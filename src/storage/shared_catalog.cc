#include "storage/shared_catalog.h"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <unordered_set>
#include <utility>

#include "common/str_util.h"
#include "storage/format.h"

namespace sc::storage {

SharedCatalog::SharedCatalog(std::int64_t budget_bytes,
                             int negative_lookup_damp_limit,
                             SpillOptions spill)
    : budget_(budget_bytes),
      damp_limit_(negative_lookup_damp_limit),
      spill_(std::move(spill)) {
  if (!spill_.directory.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(spill_.directory, ec);
    spill_enabled_ = std::filesystem::is_directory(spill_.directory, ec);
  }
  if (spill_enabled_) {
    manifest_ = std::make_unique<SpillManifest>(
        spill_.directory, spill_.manifest_compact_bytes);
    // Scratch mode treats whatever journal a prior owner left as stale.
    if (!spill_.recover) manifest_->Erase();
    SpillManifest::OpenResult opened = manifest_->Open();
    if (spill_.recover) RecoverSpillDirectory(std::move(opened));
  }
}

SharedCatalog::~SharedCatalog() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (spill_.recover) {
    // Durable tier: files and journal stay for the next incarnation.
    return;
  }
  while (!spill_lru_.empty()) EraseSpillLocked(spill_lru_.back());
  if (manifest_ != nullptr) manifest_->Erase();
}

void SharedCatalog::RecoverSpillDirectory(SpillManifest::OpenResult opened) {
  namespace fs = std::filesystem;
  // Oldest stamp first so push_front leaves the youngest entry at the
  // spill-LRU front, approximating the pre-crash recency order.
  std::sort(opened.live.begin(), opened.live.end(),
            [](const SpillManifest::Entry& a, const SpillManifest::Entry& b) {
              return a.stamp < b.stamp;
            });
  std::unordered_set<std::string> adopted;
  std::int64_t spill_bytes = 0;
  for (const SpillManifest::Entry& entry : opened.live) {
    const std::string path = spill_.directory + "/" + entry.file;
    std::error_code ec;
    const std::uintmax_t on_disk = fs::file_size(path, ec);
    if (ec || static_cast<std::int64_t>(on_disk) != entry.file_bytes) {
      // Missing or wrong size (crash mid-write, external damage): the
      // journal promised bytes the directory cannot deliver. Never
      // serve it.
      corrupt_files_.fetch_add(1, std::memory_order_relaxed);
      fs::remove(path, ec);
      manifest_->Remove(entry.key);
      continue;
    }
    SpillRecord rec;
    rec.path = path;
    rec.file = entry.file;
    rec.file_bytes = entry.file_bytes;
    rec.durable = entry.durable;
    rec.stamp = entry.stamp;
    spill_lru_.push_front(entry.key);
    rec.lru = spill_lru_.begin();
    spilled_.emplace(entry.key, std::move(rec));
    adopted.insert(entry.file);
    spill_bytes += entry.file_bytes;
    recovered_entries_.fetch_add(1, std::memory_order_relaxed);
    recovered_bytes_.fetch_add(entry.file_bytes, std::memory_order_relaxed);
    // Stamps must stay unique across the restart for Invalidate()'s ABA
    // guard; file names must not collide with survivors.
    next_stamp_ = std::max(next_stamp_, entry.stamp + 1);
    if (entry.file.rfind("spill_", 0) == 0) {
      const std::uint64_t n =
          std::strtoull(entry.file.c_str() + 6, nullptr, 10);
      next_spill_file_ = std::max(next_spill_file_, n + 1);
    }
  }
  spill_bytes_.store(spill_bytes, std::memory_order_relaxed);
  // Orphan hygiene: anything the journal does not name (spill files
  // whose append never landed, stray temp files) is unreachable and
  // unaccountable — delete it rather than leak disk forever.
  std::error_code ec;
  for (const auto& dirent : fs::directory_iterator(spill_.directory, ec)) {
    if (!dirent.is_regular_file(ec)) continue;
    const std::string name = dirent.path().filename().string();
    if (name == SpillManifest::kFileName || adopted.count(name) != 0) {
      continue;
    }
    std::error_code remove_ec;
    fs::remove(dirent.path(), remove_ec);
    if (!remove_ec) orphans_removed_.fetch_add(1, std::memory_order_relaxed);
  }
  EnforceSpillCapLocked();  // the cap may have shrunk across the restart
}

bool SharedCatalog::Publish(std::uint64_t key, engine::TablePtr table,
                            std::int64_t size, bool durable,
                            std::uint64_t* stamp) {
  if (stamp != nullptr) *stamp = 0;
  // Degrade on injected publish faults: the caller already treats a
  // false return as the (routine) budget-reject path, so a firing rule
  // costs shared residency, never correctness.
  if (fault_injector_ != nullptr &&
      fault_injector_->ShouldFail(fault::Site::kCatalogPublish,
                                  std::to_string(key))) {
    rejects_.fetch_add(1, std::memory_order_relaxed);
    if (trace_ != nullptr && trace_->enabled()) {
      trace_->Instant("shared", "fault",
                      StrFormat("\"key\":%llu",
                                static_cast<unsigned long long>(key)));
    }
    return false;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (size < 0) return false;
  auto it = entries_.find(key);
  if (it != entries_.end() && it->second.quarantined) {
    // A condemned entry must serve nobody; a fresh publish of the same
    // content supersedes it once every stale pin is gone.
    if (it->second.pins > 0) {
      rejects_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    lru_.erase(it->second.lru);
    used_.fetch_sub(it->second.size, std::memory_order_relaxed);
    entries_.erase(it);
    it = entries_.end();
  }
  if (it != entries_.end()) {
    // Content keys are immutable: refresh recency, keep the first table.
    it->second.durable |= durable;
    if (it->second.pins == 0) {
      lru_.splice(lru_.begin(), lru_, it->second.lru);
    }
    if (stamp != nullptr) *stamp = it->second.stamp;
    return true;
  }
  // Feasibility first: evicting the whole unpinned LRU leaves exactly
  // the pinned bytes resident, so an entry that cannot fit next to them
  // is rejected before flushing anyone else's residency for nothing
  // (oversize nodes are routinely published unflagged).
  if (size > budget_ - pinned_.load(std::memory_order_relaxed)) {
    rejects_.fetch_add(1, std::memory_order_relaxed);
    if (trace_ != nullptr && trace_->enabled()) {
      trace_->Instant("shared", "reject",
                      StrFormat("\"key\":%llu,\"bytes\":%lld",
                                static_cast<unsigned long long>(key),
                                static_cast<long long>(size)));
    }
    return false;
  }
  std::int64_t used = used_.load(std::memory_order_relaxed);
  while (used + size > budget_ && !lru_.empty()) {
    used -= entries_.at(lru_.back()).size;
    EvictOneLocked();
  }
  if (used + size > budget_) {
    rejects_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  // A fresh publish supersedes any spill file left from a prior
  // eviction of this key: the resident entry is now the authority.
  EraseSpillLocked(key);
  lru_.push_front(key);
  Entry entry;
  entry.table = std::move(table);
  entry.size = size;
  entry.durable = durable;
  entry.stamp = next_stamp_++;
  entry.lru = lru_.begin();
  if (stamp != nullptr) *stamp = entry.stamp;
  entries_.emplace(key, std::move(entry));
  used += size;
  used_.store(used, std::memory_order_relaxed);
  if (used > peak_.load(std::memory_order_relaxed)) {
    peak_.store(used, std::memory_order_relaxed);
  }
  publishes_.fetch_add(1, std::memory_order_relaxed);
  // New content starts a new damping epoch: any key that kept missing may
  // now hit, so stale per-key miss counts must stop suppressing probes.
  epoch_.fetch_add(1, std::memory_order_relaxed);
  if (trace_ != nullptr && trace_->enabled()) {
    trace_->Instant("shared", "publish",
                    StrFormat("\"key\":%llu,\"bytes\":%lld",
                              static_cast<unsigned long long>(key),
                              static_cast<long long>(size)));
  }
  return true;
}

void SharedCatalog::MarkDurable(std::uint64_t key) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second.durable = true;
    return;
  }
  // The entry may have been spilled between publish and the write
  // landing; the upgrade must reach the journal or a recovered catalog
  // would re-demote the flag across a restart.
  auto sit = spilled_.find(key);
  if (sit != spilled_.end() && !sit->second.durable) {
    sit->second.durable = true;
    if (manifest_ != nullptr) {
      manifest_->Append({key, sit->second.file_bytes, sit->second.stamp,
                         true, sit->second.file});
    }
  }
}

engine::TablePtr SharedCatalog::Pin(std::uint64_t key,
                                    std::int64_t* size, bool count,
                                    bool* durable) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it == entries_.end() || it->second.quarantined) {
    if (it == entries_.end() && spill_enabled_) {
      engine::TablePtr refilled = RefillLocked(key, size, count, durable);
      if (refilled != nullptr) return refilled;
    }
    if (count) CountMissLocked(key);
    return nullptr;
  }
  Entry& entry = it->second;
  if (size != nullptr) *size = entry.size;
  if (durable != nullptr) *durable = entry.durable;
  if (entry.pins == 0) {
    lru_.erase(entry.lru);
    pinned_.fetch_add(entry.size, std::memory_order_relaxed);
  }
  ++entry.pins;
  if (count) hits_.fetch_add(1, std::memory_order_relaxed);
  return entry.table;
}

void SharedCatalog::Unpin(std::uint64_t key) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it == entries_.end() || it->second.pins == 0) return;
  Entry& entry = it->second;
  if (--entry.pins == 0) {
    pinned_.fetch_sub(entry.size, std::memory_order_relaxed);
    if (entry.quarantined) {
      // Last reader of a condemned entry: erase instead of re-entering
      // the LRU, so quarantined content can never be served again.
      used_.fetch_sub(entry.size, std::memory_order_relaxed);
      entries_.erase(it);
      return;
    }
    lru_.push_front(key);
    entry.lru = lru_.begin();
  }
}

bool SharedCatalog::Invalidate(std::uint64_t key, std::uint64_t stamp) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    // The entry may have been spilled since its publish. The same
    // guards apply: only the exact stamped publish, never a durable
    // entry. A quarantined spill file is deleted outright — spilled
    // entries hold no pins, so there is no reader to wait out.
    auto sit = spilled_.find(key);
    if (sit == spilled_.end() || sit->second.stamp != stamp ||
        sit->second.durable) {
      return false;
    }
    quarantines_.fetch_add(1, std::memory_order_relaxed);
    if (trace_ != nullptr && trace_->enabled()) {
      trace_->Instant("shared", "quarantine",
                      StrFormat("\"key\":%llu,\"bytes\":%lld",
                                static_cast<unsigned long long>(key),
                                static_cast<long long>(
                                    sit->second.file_bytes)));
    }
    EraseSpillLocked(key);
    return true;
  }
  Entry& entry = it->second;
  // Only the exact publish being unwound may be condemned: a stamp
  // mismatch means someone republished the key since, and a durable
  // entry's content is already safely on external storage.
  if (entry.stamp != stamp || entry.durable || entry.quarantined) {
    return false;
  }
  quarantines_.fetch_add(1, std::memory_order_relaxed);
  if (trace_ != nullptr && trace_->enabled()) {
    trace_->Instant("shared", "quarantine",
                    StrFormat("\"key\":%llu,\"bytes\":%lld",
                              static_cast<unsigned long long>(key),
                              static_cast<long long>(entry.size)));
  }
  if (entry.pins == 0) {
    lru_.erase(entry.lru);
    used_.fetch_sub(entry.size, std::memory_order_relaxed);
    entries_.erase(it);
  } else {
    entry.quarantined = true;  // erased when the last pin drops
  }
  return true;
}

bool SharedCatalog::Contains(std::uint64_t key) const {
  // Spilled entries count as resident: a Pin will refill them at disk
  // cost, which still beats the recompute the optimizer would otherwise
  // schedule.
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it != entries_.end()) return !it->second.quarantined;
  return spilled_.count(key) != 0;
}

std::vector<bool> SharedCatalog::ContainsAll(
    const std::vector<std::uint64_t>& keys) const {
  std::vector<bool> resident(keys.size(), false);
  std::lock_guard<std::mutex> lock(mutex_);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    auto it = entries_.find(keys[i]);
    resident[i] = it != entries_.end() ? !it->second.quarantined
                                       : spilled_.count(keys[i]) != 0;
  }
  return resident;
}

std::size_t SharedCatalog::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

void SharedCatalog::EvictOneLocked() {
  const std::uint64_t victim = lru_.back();
  lru_.pop_back();
  auto it = entries_.find(victim);
  const std::int64_t size = it->second.size;
  if (spill_enabled_) {
    // Demote to a compressed spill file instead of dropping. The
    // record carries the publish stamp and durable flag so Invalidate
    // and refill see the entry exactly as if it had stayed resident. A
    // failed write (full disk, injected fault upstream) degrades to the
    // plain drop — spilling is an optimization, never a correctness
    // dependency.
    EraseSpillLocked(victim);  // defensive: stale record for this key
    const std::string file =
        "spill_" + std::to_string(next_spill_file_++) + ".scc";
    const std::string path = spill_.directory + "/" + file;
    try {
      SpillRecord rec;
      rec.file_bytes = WriteTableFileCompressed(*it->second.table, path);
      rec.path = path;
      rec.file = file;
      rec.durable = it->second.durable;
      rec.stamp = it->second.stamp;
      // Chaos hook: a corruption rule at kSpillWrite damages the file
      // the write just produced. The record (and journal entry) stand —
      // detection is the *reader's* job, on refill or recovery.
      if (fault_injector_ != nullptr) {
        const fault::CorruptionSpec spec = fault_injector_->ShouldCorrupt(
            fault::Site::kSpillWrite, file);
        if (spec.kind != fault::CorruptKind::kNone) {
          fault::CorruptFile(path, spec);
        }
      }
      // Journal before relying on the file: recovery trusts only
      // manifest-named files, so the append must land first.
      if (manifest_ != nullptr) {
        manifest_->Append({victim, rec.file_bytes, rec.stamp, rec.durable,
                           rec.file});
      }
      spill_lru_.push_front(victim);
      rec.lru = spill_lru_.begin();
      spill_bytes_.fetch_add(rec.file_bytes, std::memory_order_relaxed);
      spilled_.emplace(victim, std::move(rec));
      spills_.fetch_add(1, std::memory_order_relaxed);
      if (trace_ != nullptr && trace_->enabled()) {
        trace_->Instant("shared", "spill",
                        StrFormat("\"key\":%llu,\"bytes\":%lld",
                                  static_cast<unsigned long long>(victim),
                                  static_cast<long long>(size)));
      }
      EnforceSpillCapLocked();
    } catch (...) {
      std::error_code ec;
      std::filesystem::remove(path, ec);
    }
  }
  used_.fetch_sub(size, std::memory_order_relaxed);
  entries_.erase(it);
  evictions_.fetch_add(1, std::memory_order_relaxed);
  if (trace_ != nullptr && trace_->enabled()) {
    trace_->Instant("shared", "evict",
                    StrFormat("\"key\":%llu,\"bytes\":%lld",
                              static_cast<unsigned long long>(victim),
                              static_cast<long long>(size)));
  }
}

void SharedCatalog::EraseSpillLocked(std::uint64_t key) {
  auto it = spilled_.find(key);
  if (it == spilled_.end()) return;
  std::error_code ec;
  std::filesystem::remove(it->second.path, ec);
  if (manifest_ != nullptr) manifest_->Remove(key);
  spill_bytes_.fetch_sub(it->second.file_bytes, std::memory_order_relaxed);
  spill_lru_.erase(it->second.lru);
  spilled_.erase(it);
}

void SharedCatalog::EnforceSpillCapLocked() {
  if (spill_.max_bytes <= 0) return;
  while (spill_bytes_.load(std::memory_order_relaxed) > spill_.max_bytes &&
         !spill_lru_.empty()) {
    // Oldest spill first: its entry falls back to recompute, exactly the
    // pre-spill behaviour.
    EraseSpillLocked(spill_lru_.back());
  }
}

engine::TablePtr SharedCatalog::RefillLocked(std::uint64_t key,
                                             std::int64_t* size,
                                             bool count, bool* durable) {
  auto sit = spilled_.find(key);
  if (sit == spilled_.end()) return nullptr;
  // Copy the record fields now: the evict loop below can insert into /
  // erase from spilled_ (cascading spills), invalidating `sit`.
  const std::string path = sit->second.path;
  const bool rec_durable = sit->second.durable;
  const std::uint64_t rec_stamp = sit->second.stamp;
  engine::TablePtr table;
  try {
    // Verifying read (the ReadOptions default): this is where lazily
    // recovered entries — and spill files damaged after their write —
    // earn the right to be served.
    table = std::make_shared<engine::Table>(ReadTableFileCompressed(path));
  } catch (const CorruptFileError&) {
    // Damaged spill file (bit rot, torn write, injected corruption):
    // count it, drop it, never serve it. The caller counts a miss and
    // the content falls back to recompute.
    corrupt_files_.fetch_add(1, std::memory_order_relaxed);
    if (trace_ != nullptr && trace_->enabled()) {
      trace_->Instant("shared", "corrupt-spill",
                      StrFormat("\"key\":%llu",
                                static_cast<unsigned long long>(key)));
    }
    EraseSpillLocked(key);
    return nullptr;
  } catch (...) {
    // Environmental read failure: drop the record; same recompute
    // fallback without the corruption count.
    EraseSpillLocked(key);
    return nullptr;
  }
  // String columns come back dictionary-encoded, so the refilled entry
  // re-enters the budget at its compressed size.
  const std::int64_t sz = table->ByteSize();
  if (sz > budget_ - pinned_.load(std::memory_order_relaxed)) {
    // Cannot fit next to the pinned bytes right now; keep the file for
    // a later, less contended Pin.
    return nullptr;
  }
  std::int64_t used = used_.load(std::memory_order_relaxed);
  while (used + sz > budget_ && !lru_.empty()) {
    used -= entries_.at(lru_.back()).size;
    EvictOneLocked();  // may itself spill — the compressed tier rotates
  }
  if (used + sz > budget_) return nullptr;
  Entry entry;
  entry.table = table;
  entry.size = sz;
  entry.pins = 1;  // born pinned: the caller is the reader
  entry.durable = rec_durable;
  entry.stamp = rec_stamp;
  entries_.emplace(key, std::move(entry));
  used += sz;
  used_.store(used, std::memory_order_relaxed);
  if (used > peak_.load(std::memory_order_relaxed)) {
    peak_.store(used, std::memory_order_relaxed);
  }
  pinned_.fetch_add(sz, std::memory_order_relaxed);
  spill_refills_.fetch_add(1, std::memory_order_relaxed);
  if (count) hits_.fetch_add(1, std::memory_order_relaxed);
  if (size != nullptr) *size = sz;
  if (durable != nullptr) *durable = rec_durable;
  if (trace_ != nullptr && trace_->enabled()) {
    trace_->Instant("shared", "refill",
                    StrFormat("\"key\":%llu,\"bytes\":%lld",
                              static_cast<unsigned long long>(key),
                              static_cast<long long>(sz)));
  }
  EraseSpillLocked(key);
  return table;
}

std::size_t SharedCatalog::spilled_entries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spilled_.size();
}

void SharedCatalog::CountMissLocked(std::uint64_t key) {
  if (damp_limit_ <= 0) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const std::uint64_t epoch = epoch_.load(std::memory_order_relaxed);
  auto& stamped = miss_counts_[key];
  if (stamped.first != epoch) {
    // Count belongs to an older epoch — content has been published since,
    // so the key earned a fresh budget of counted misses.
    stamped = {epoch, 0};
  }
  if (++stamped.second > damp_limit_) {
    damped_.fetch_add(1, std::memory_order_relaxed);
  } else {
    misses_.fetch_add(1, std::memory_order_relaxed);
  }
}

void SharedCatalog::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const std::uint64_t key : lru_) {
    auto it = entries_.find(key);
    used_.fetch_sub(it->second.size, std::memory_order_relaxed);
    entries_.erase(it);
  }
  lru_.clear();
  // Spilled entries are unpinned by construction — drop them too.
  while (!spill_lru_.empty()) EraseSpillLocked(spill_lru_.back());
  epoch_.fetch_add(1, std::memory_order_relaxed);
  miss_counts_.clear();
}

}  // namespace sc::storage
