#ifndef SC_SERVICE_PLAN_CACHE_H_
#define SC_SERVICE_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <optional>
#include <utility>

#include "graph/graph.h"
#include "opt/types.h"

namespace sc::service {

/// Deterministic 64-bit fingerprint of a dependency graph: covers the
/// node set (names, sizes, speedup scores, execution metadata) and the
/// edge set. Two graphs with the same fingerprint yield the same
/// optimization problem, so a cached plan is directly reusable.
std::uint64_t FingerprintGraph(const graph::Graph& g);

struct PlanCacheStats {
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  std::int64_t insertions = 0;
  std::int64_t evictions = 0;
};

/// One cached entry: the optimized plan plus its antichain stage
/// decomposition (DecomposeStages(plan.order)), so cache hits skip both
/// the alternating optimization and the per-run stage recomputation.
struct CachedPlan {
  opt::Plan plan;
  opt::StageDecomposition stages;
};

/// Thread-safe LRU cache of optimized refresh plans (plus their stage
/// metadata), keyed by (graph fingerprint, Memory-Catalog budget). Repeat
/// refreshes of an unchanged workload at the same granted budget skip the
/// alternating optimization entirely — the dominant non-execution cost of
/// a job — and hand the runtime a ready-made stage decomposition.
class PlanCache {
 public:
  explicit PlanCache(std::size_t capacity = 128);

  /// Returns the cached plan + stages for (fingerprint, budget) or
  /// nullopt.
  std::optional<CachedPlan> Lookup(std::uint64_t fingerprint,
                                   std::int64_t budget);

  /// Inserts (or refreshes) the entry for (fingerprint, budget), evicting
  /// the least-recently-used entry when full. `stages` must be the
  /// decomposition of `plan.order` — callers compute it once here instead
  /// of on every run.
  void Insert(std::uint64_t fingerprint, std::int64_t budget,
              opt::Plan plan, opt::StageDecomposition stages);

  PlanCacheStats stats() const;
  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  void Clear();

 private:
  using Key = std::pair<std::uint64_t, std::int64_t>;
  struct Entry {
    Key key;
    CachedPlan cached;
  };

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::list<Entry> lru_;  // front = most recently used
  std::map<Key, std::list<Entry>::iterator> index_;
  PlanCacheStats stats_;
};

}  // namespace sc::service

#endif  // SC_SERVICE_PLAN_CACHE_H_
