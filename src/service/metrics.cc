#include "service/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/str_util.h"
#include "common/table_printer.h"

namespace sc::service {

namespace {

std::string EscapeJsonString(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

const char* JobStatusName(JobStatus status) {
  switch (status) {
    case JobStatus::kOk: return "ok";
    case JobStatus::kFailed: return "failed";
    case JobStatus::kCancelled: return "cancelled";
    case JobStatus::kTimeout: return "timeout";
    case JobStatus::kShed: return "shed";
  }
  return "failed";
}

ServiceMetrics::ServiceMetrics(std::size_t max_samples)
    : max_samples_(max_samples == 0 ? 1 : max_samples) {}

void ServiceMetrics::Record(const JobObservation& observation) {
  std::lock_guard<std::mutex> lock(mutex_);
  TenantState& state = tenants_[observation.tenant];
  TenantMetrics& totals = state.totals;
  if (observation.ok) {
    ++totals.jobs_completed;
  } else {
    ++totals.jobs_failed;
    switch (observation.status) {
      case JobStatus::kCancelled: ++totals.jobs_cancelled; break;
      case JobStatus::kTimeout: ++totals.jobs_timeout; break;
      case JobStatus::kShed: ++totals.jobs_shed; break;
      default: break;  // plain failure: no sub-bucket
    }
  }
  totals.total_queue_wait_seconds += observation.queue_wait_seconds;
  totals.total_exec_seconds += observation.exec_seconds;
  totals.bytes_requested += observation.requested_bytes;
  totals.bytes_granted += observation.granted_bytes;
  totals.bytes_returned += observation.returned_bytes;
  totals.catalog_hits += observation.catalog_hits;
  totals.catalog_misses += observation.catalog_misses;
  totals.cross_job_hits += observation.cross_job_hits;
  totals.cross_job_bytes_saved += observation.cross_job_bytes_saved;
  if (observation.plan_cache_hit) ++totals.plan_cache_hits;
  if (observation.reoptimized) ++totals.reoptimizations;

  PriorityWaitStats& waits = priority_waits_[observation.priority];
  ++waits.jobs;
  waits.total_wait_seconds += observation.queue_wait_seconds;
  waits.max_wait_seconds =
      std::max(waits.max_wait_seconds, observation.queue_wait_seconds);

  const double latency =
      observation.queue_wait_seconds + observation.exec_seconds;
  if (state.latencies.size() < max_samples_) {
    state.latencies.push_back(latency);
  } else {
    state.latencies[state.next_slot] = latency;
    state.next_slot = (state.next_slot + 1) % max_samples_;
  }
}

void ServiceMetrics::JobQueued(std::uint64_t job_id, int priority,
                               double enqueue_seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  queued_[job_id] = QueuedJob{priority, enqueue_seconds};
}

void ServiceMetrics::JobDequeued(std::uint64_t job_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  queued_.erase(job_id);
}

double ServiceMetrics::StarvationSecondsLocked() const {
  if (queued_.empty()) return 0.0;
  const double now = MonotonicSeconds();
  double worst = 0.0;
  for (const auto& [id, job] : queued_) {
    worst = std::max(worst, now - job.enqueue_seconds);
  }
  return worst;
}

double ServiceMetrics::StarvationSeconds() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return StarvationSecondsLocked();
}

double ServiceMetrics::Percentile(const std::vector<double>& sorted,
                                  double q) {
  if (sorted.empty()) return 0.0;
  const double rank = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(rank));
  const std::size_t hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

TenantMetrics ServiceMetrics::Finalize(const TenantState& state) const {
  TenantMetrics metrics = state.totals;
  std::vector<double> sorted = state.latencies;
  std::sort(sorted.begin(), sorted.end());
  metrics.p50_latency_seconds = Percentile(sorted, 0.50);
  metrics.p99_latency_seconds = Percentile(sorted, 0.99);
  return metrics;
}

MetricsSnapshot ServiceMetrics::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snapshot;
  std::vector<double> all_latencies;
  for (const auto& [tenant, state] : tenants_) {
    snapshot.per_tenant[tenant] = Finalize(state);
    const TenantMetrics& m = snapshot.per_tenant[tenant];
    TenantMetrics& agg = snapshot.aggregate;
    agg.jobs_completed += m.jobs_completed;
    agg.jobs_failed += m.jobs_failed;
    agg.jobs_cancelled += m.jobs_cancelled;
    agg.jobs_timeout += m.jobs_timeout;
    agg.jobs_shed += m.jobs_shed;
    agg.total_queue_wait_seconds += m.total_queue_wait_seconds;
    agg.total_exec_seconds += m.total_exec_seconds;
    agg.bytes_requested += m.bytes_requested;
    agg.bytes_granted += m.bytes_granted;
    agg.bytes_returned += m.bytes_returned;
    agg.catalog_hits += m.catalog_hits;
    agg.catalog_misses += m.catalog_misses;
    agg.cross_job_hits += m.cross_job_hits;
    agg.cross_job_bytes_saved += m.cross_job_bytes_saved;
    agg.plan_cache_hits += m.plan_cache_hits;
    agg.reoptimizations += m.reoptimizations;
    all_latencies.insert(all_latencies.end(), state.latencies.begin(),
                         state.latencies.end());
  }
  std::sort(all_latencies.begin(), all_latencies.end());
  snapshot.aggregate.p50_latency_seconds =
      Percentile(all_latencies, 0.50);
  snapshot.aggregate.p99_latency_seconds =
      Percentile(all_latencies, 0.99);
  snapshot.per_priority = priority_waits_;
  snapshot.starvation_seconds = StarvationSecondsLocked();
  snapshot.queued_jobs = queued_.size();
  return snapshot;
}

std::string ServiceMetrics::FormatTable() const {
  const MetricsSnapshot snapshot = Snapshot();
  TablePrinter table({"tenant", "jobs", "failed", "cancel", "timeout",
                      "shed", "avg wait", "p50", "p99", "catalog hit%",
                      "xjob hit%", "xjob saved", "plan cache", "reopt"});
  auto add = [&](const std::string& name, const TenantMetrics& m) {
    table.AddRow({name, std::to_string(m.jobs_total()),
                  std::to_string(m.jobs_failed),
                  std::to_string(m.jobs_cancelled),
                  std::to_string(m.jobs_timeout),
                  std::to_string(m.jobs_shed),
                  StrFormat("%.3fs", m.mean_queue_wait_seconds()),
                  StrFormat("%.3fs", m.p50_latency_seconds),
                  StrFormat("%.3fs", m.p99_latency_seconds),
                  StrFormat("%.1f", 100.0 * m.catalog_hit_rate()),
                  StrFormat("%.1f", 100.0 * m.cross_job_hit_rate()),
                  FormatBytes(m.cross_job_bytes_saved),
                  std::to_string(m.plan_cache_hits),
                  std::to_string(m.reoptimizations)});
  };
  for (const auto& [tenant, metrics] : snapshot.per_tenant) {
    add(tenant, metrics);
  }
  table.AddSeparator();
  add("(all)", snapshot.aggregate);

  std::ostringstream out;
  out << table.ToString();
  if (!snapshot.per_priority.empty()) {
    TablePrinter priorities(
        {"priority", "jobs", "avg wait", "max wait"});
    for (const auto& [priority, waits] : snapshot.per_priority) {
      priorities.AddRow({std::to_string(priority),
                         std::to_string(waits.jobs),
                         StrFormat("%.3fs", waits.mean_wait_seconds()),
                         StrFormat("%.3fs", waits.max_wait_seconds)});
    }
    out << "\n" << priorities.ToString();
  }
  out << StrFormat("\nqueued: %zu job(s), starvation %.3fs\n",
                   snapshot.queued_jobs, snapshot.starvation_seconds);
  return out.str();
}

std::string ServiceMetrics::ToJson() const {
  const MetricsSnapshot snapshot = Snapshot();
  std::ostringstream out;
  auto emit = [&](const TenantMetrics& m) {
    out << "{\"jobs_completed\":" << m.jobs_completed
        << ",\"jobs_failed\":" << m.jobs_failed
        << ",\"jobs_cancelled\":" << m.jobs_cancelled
        << ",\"jobs_timeout\":" << m.jobs_timeout
        << ",\"jobs_shed\":" << m.jobs_shed
        << ",\"mean_queue_wait_seconds\":"
        << StrFormat("%.6f", m.mean_queue_wait_seconds())
        << ",\"p50_latency_seconds\":"
        << StrFormat("%.6f", m.p50_latency_seconds)
        << ",\"p99_latency_seconds\":"
        << StrFormat("%.6f", m.p99_latency_seconds)
        << ",\"catalog_hit_rate\":"
        << StrFormat("%.6f", m.catalog_hit_rate())
        << ",\"cross_job_hits\":" << m.cross_job_hits
        << ",\"cross_job_hit_rate\":"
        << StrFormat("%.6f", m.cross_job_hit_rate())
        << ",\"cross_job_bytes_saved\":" << m.cross_job_bytes_saved
        << ",\"bytes_requested\":" << m.bytes_requested
        << ",\"bytes_granted\":" << m.bytes_granted
        << ",\"bytes_returned\":" << m.bytes_returned
        << ",\"plan_cache_hits\":" << m.plan_cache_hits
        << ",\"reoptimizations\":" << m.reoptimizations << "}";
  };
  out << "{\"aggregate\":";
  emit(snapshot.aggregate);
  out << ",\"tenants\":{";
  bool first = true;
  for (const auto& [tenant, metrics] : snapshot.per_tenant) {
    if (!first) out << ",";
    first = false;
    out << "\"" << EscapeJsonString(tenant) << "\":";
    emit(metrics);
  }
  out << "},\"per_priority\":{";
  first = true;
  for (const auto& [priority, waits] : snapshot.per_priority) {
    if (!first) out << ",";
    first = false;
    out << "\"" << priority << "\":{\"jobs\":" << waits.jobs
        << ",\"mean_wait_seconds\":"
        << StrFormat("%.6f", waits.mean_wait_seconds())
        << ",\"max_wait_seconds\":"
        << StrFormat("%.6f", waits.max_wait_seconds) << "}";
  }
  out << "},\"queued_jobs\":" << snapshot.queued_jobs
      << ",\"starvation_seconds\":"
      << StrFormat("%.6f", snapshot.starvation_seconds) << "}";
  return out.str();
}

}  // namespace sc::service
