#ifndef SC_SERVICE_PARALLELISM_BROKER_H_
#define SC_SERVICE_PARALLELISM_BROKER_H_

#include <mutex>

namespace sc::service {

/// How the service's total thread budget is split between inter-job
/// workers and intra-job execution lanes.
struct ParallelismSplit {
  int workers = 1;        // concurrent jobs (RefreshService worker threads)
  int lanes_per_job = 1;  // Controller max_parallel_nodes per job
};

/// Arbitrates the service's total thread budget between inter-job
/// concurrency (workers) and intra-job concurrency (executor lanes), so
/// that enabling DAG-parallel execution does not multiply the thread
/// count: with L lanes per job the service runs total/L workers, and each
/// running job leases its lanes from one shared pool. When some workers
/// are idle, a job may borrow their lanes (up to its per-job cap), so a
/// lone job on an otherwise idle service still gets full parallelism.
///
/// The accounting counts execution lanes only; per-run coordinator and
/// materializer threads spend their life blocked and are ignored, like
/// every thread-pool sizing heuristic does.
class ParallelismBroker {
 public:
  ParallelismBroker(int total_threads, int max_lanes_per_job);

  ParallelismBroker(const ParallelismBroker&) = delete;
  ParallelismBroker& operator=(const ParallelismBroker&) = delete;

  /// Static split used to size the service's worker pool.
  static ParallelismSplit Split(int total_threads, int max_lanes_per_job);

  /// Leases lanes for one job about to execute: at least 1 (a job never
  /// blocks on lanes), at most min(max_lanes_per_job, preferred), never
  /// exceeding the free share of the thread budget when any is left.
  /// Callers pass the plan's antichain width as `preferred` so a narrow
  /// job does not hold lanes it cannot use. Non-blocking.
  int AcquireLanes(int preferred = 1 << 20);
  /// Returns a lease taken with AcquireLanes.
  void ReleaseLanes(int lanes);

  int total_threads() const { return total_threads_; }
  int max_lanes_per_job() const { return max_lanes_; }
  int lanes_in_use() const;

 private:
  const int total_threads_;
  const int max_lanes_;
  mutable std::mutex mutex_;
  int in_use_ = 0;
};

}  // namespace sc::service

#endif  // SC_SERVICE_PARALLELISM_BROKER_H_
