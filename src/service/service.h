#ifndef SC_SERVICE_SERVICE_H_
#define SC_SERVICE_SERVICE_H_

#include <condition_variable>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "fault/fault.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "opt/alternating.h"
#include "runtime/cancel.h"
#include "runtime/controller.h"
#include "runtime/lane_pool.h"
#include "service/budget_broker.h"
#include "service/metrics.h"
#include "service/parallelism_broker.h"
#include "service/plan_cache.h"
#include "storage/shared_catalog.h"
#include "storage/throttled_disk.h"
#include "workload/workloads.h"

namespace sc::service {

struct ServiceOptions {
  /// Total execution-thread budget of the service. With
  /// max_intra_job_lanes == 1 (default) this is exactly the number of
  /// worker threads, each driving its own runtime::Controller — the
  /// pre-parallel behaviour. With L > 1 lanes the ParallelismBroker
  /// splits the budget into num_workers / L inter-job workers whose jobs
  /// each lease up to L intra-job lanes, so enabling DAG-parallel
  /// execution never multiplies the service's thread count.
  int num_workers = 4;
  /// Upper bound on one job's intra-job execution lanes (Controller
  /// max_parallel_nodes). Jobs may borrow idle workers' lanes up to this
  /// cap. With lanes > 1 the service also turns on the optimizer's
  /// stage-aware ordering post-pass (opt::WidenStages) so cached plans
  /// feed the lanes as wide an early antichain as peak memory allows.
  int max_intra_job_lanes = 1;
  /// Idle-shutdown horizon of the service-wide LanePool: execution lanes
  /// idle this long exit and are respawned on demand. <= 0 keeps idle
  /// lanes alive for the service's lifetime.
  double lane_idle_shutdown_seconds = 30.0;
  /// Inline small-node dispatch threshold forwarded to every job's
  /// Controller (ControllerOptions::inline_node_cost_seconds): parallel
  /// runs execute nodes estimated at or below this many seconds on the
  /// coordinator thread instead of a pool lane. <= 0 disables inlining.
  double inline_node_cost_seconds = 0.001;
  /// Morsel granularity forwarded to every job's Controller
  /// (ControllerOptions::morsel_target_seconds): a node estimated above
  /// this many seconds splits its hash-join / aggregation interiors into
  /// morsels executed by idle lanes of the service pool, so one giant
  /// node no longer pins job latency to a single lane. Results are
  /// bit-identical; <= 0 disables interior fan-out.
  double morsel_target_seconds = 0.005;
  /// Row floor per morsel (ControllerOptions::morsel_min_rows).
  std::int64_t morsel_min_rows = 8192;
  /// Interior fan-out cap (ControllerOptions::morsel_max_lanes):
  /// 0 = the machine's hardware concurrency.
  int morsel_max_lanes = 0;
  /// Global Memory-Catalog bytes shared by all in-flight jobs.
  std::int64_t global_budget = 256LL * 1024 * 1024;
  /// Per-job budget request when the job does not name one. 0 = ask for
  /// the whole global budget (the broker scales it down under load).
  std::int64_t default_job_budget = 0;
  /// Default per-tenant reservation cap (0 = uncapped); per-tenant
  /// overrides via RefreshService::SetTenantQuota.
  std::int64_t default_tenant_quota = 0;
  /// Minimum fundable fraction of a request before admission (see
  /// BudgetBrokerOptions::min_grant_fraction).
  double min_grant_fraction = 0.25;
  std::size_t plan_cache_capacity = 128;
  /// Cross-job Memory-Catalog sharing: route every worker's runs through
  /// one content-keyed storage::SharedCatalog (budget = global_budget),
  /// so tenants refreshing the same content read each other's resident
  /// outputs — and skip recomputing nodes whose outputs are already
  /// resident — instead of each funding a private catalog slice. Off
  /// reproduces the PR-3 private-catalog behaviour exactly.
  bool share_catalog = true;
  /// SharedCatalog spill tier: when non-empty, entries evicted under
  /// budget pressure are demoted to compressed SCC1 files in this
  /// directory and lazily refilled on their next Pin (counted as
  /// spill_refills / cross-job hits, not recompute). Empty = disabled
  /// (evictions drop entries, the pre-spill behaviour).
  std::string spill_directory;
  /// Cap on total compressed spill bytes on disk; <= 0 = unbounded.
  std::int64_t spill_max_bytes = 0;
  /// Durable spill tier with crash recovery (storage::SpillOptions::
  /// recover): spill files and the manifest journal survive service
  /// shutdown, and a fresh service pointed at the same spill_directory
  /// re-registers every surviving entry as warm spilled residency —
  /// cross-job hits resume with zero recompute. Damaged files are
  /// detected (checksums), counted, and never served; orphan files are
  /// removed at startup. Off (default) treats the directory as scratch.
  bool spill_recover = false;
  /// Compressed columnar residency: dictionary-encode string columns of
  /// node outputs before they enter catalog accounting (see
  /// runtime::ControllerOptions::compress_residency). Off reproduces the
  /// plain-string footprints of the pre-compression service.
  bool compress_residency = true;
  /// Sharing-aware optimization pre-pass: snapshot shared residency
  /// before planning and re-cost resident nodes
  /// (opt::ReOptimizeWithResidency), steering the knapsack budget to
  /// not-yet-shared nodes. Residency-adjusted plans are cached under a
  /// residency-salted key next to the base plan. Only meaningful with
  /// share_catalog.
  bool sharing_aware_optimization = true;
  /// Content-fingerprint salt (a data epoch): bump it to invalidate
  /// every cross-job match, e.g. after base tables change.
  std::uint64_t shared_epoch = 0;
  /// Grant renegotiation: once a job's plan is known, budget beyond
  /// plan peak × this slack is returned to the BudgetBroker early
  /// (ReturnUnused), waking waiters before the run completes. The slack
  /// absorbs actual output sizes overshooting the optimizer's estimates;
  /// values < 1 disable early return.
  double budget_return_slack = 1.25;
  /// Forwarded to each worker's Controller.
  bool background_materialize = true;
  /// Optimizer configuration used when a job misses the plan cache.
  opt::AlternatingOptions optimizer;
  /// Observability trace recorder (obs::TraceRecorder) every job's
  /// lifecycle spans are emitted into: queued / wait-budget / execute on
  /// the worker tracks, budget grant / return / release instants,
  /// plan-cache lookups, and — via the Controller — per-node execute /
  /// publish / materialize spans on the lane tracks. Not owned; must
  /// outlive the service. Null with an empty trace_path (the default)
  /// disables tracing entirely: every boundary costs one branch.
  obs::TraceRecorder* trace = nullptr;
  /// Convenience alternative to `trace`: when non-empty (and `trace` is
  /// null), the service owns a recorder and writes the Chrome/Perfetto
  /// trace JSON here at Shutdown — load the file in chrome://tracing or
  /// ui.perfetto.dev to see the run as a per-lane timeline.
  std::string trace_path;
  /// Deterministic fault injection (tests / chaos CI): wired into the
  /// disk, the shared catalog, the budget broker, and every job's
  /// Controller. Not owned; must outlive the service. Null (default)
  /// compiles every injection point down to one null check.
  fault::FaultInjector* fault_injector = nullptr;
  /// Per-node retry budget for transient failures, forwarded to every
  /// job's Controller (ControllerOptions::retry_limit). 0 = fail fast.
  int retry_limit = 0;
  /// Base backoff before the first retry; doubles per attempt, capped at
  /// 64x (ControllerOptions::retry_backoff_ms).
  double retry_backoff_ms = 1.0;
  /// Graceful degradation under overload: when the admission queue is
  /// deeper than this at pickup time, the job's budget request is scaled
  /// by overload_budget_fraction before hitting the broker — smaller
  /// grants admit faster and free memory for the backlog; the existing
  /// partial-grant path re-optimizes the plan at the reduced budget.
  /// 0 (default) disables degradation.
  std::size_t overload_queue_depth = 0;
  /// Budget multiplier applied under overload (clamped to (0, 1]).
  double overload_budget_fraction = 0.5;
};

/// One refresh job: an annotated workload (speedup scores present, e.g.
/// via Controller::ProfileAndAnnotate or workload::AnnotateWorkload)
/// plus tenant identity and scheduling hints. The workload is shared —
/// submitting the same workload from many tenants copies nothing.
///
/// MV node names are warehouse table names and form one global
/// namespace on the service's disk (the paper's Hive-warehouse model):
/// two jobs naming the same MV refresh the same table. Workloads that
/// must not share state must use distinct node names.
struct RefreshJobSpec {
  std::shared_ptr<const workload::MvWorkload> workload;
  std::string tenant = "default";
  /// Higher runs earlier; admission and budget arbitration are both
  /// priority-aware.
  int priority = 0;
  /// Memory-Catalog bytes this job asks the broker for. 0 = the service
  /// default. The grant may be smaller; the plan is then re-optimized at
  /// the granted budget.
  std::int64_t requested_budget = 0;
  /// End-to-end deadline in seconds, relative to Submit. Once it expires
  /// the job is cancelled wherever it is — queued, blocked in budget
  /// arbitration, or executing (stopped at the next node / morsel /
  /// materialize boundary) — and finishes with JobStatus::kTimeout.
  /// 0 (default) = no deadline.
  double deadline_seconds = 0.0;
  /// Shedding bound: a job still queued after this many seconds is
  /// dropped at pickup with JobStatus::kShed instead of being run late.
  /// 0 (default) = never shed.
  double max_queue_wait_seconds = 0.0;
};

struct JobResult {
  std::uint64_t job_id = 0;
  std::string tenant;
  /// Terminal disposition (ok / failed / cancelled / timeout / shed);
  /// report.ok == (status == JobStatus::kOk).
  JobStatus status = JobStatus::kFailed;
  runtime::RunReport report;
  std::int64_t requested_budget = 0;
  std::int64_t granted_budget = 0;
  /// Bytes handed back to the broker before the run finished (grant
  /// renegotiation; the run executed at granted_budget - returned_budget).
  std::int64_t returned_budget = 0;
  /// Intra-job execution lanes leased from the ParallelismBroker.
  int lanes = 1;
  double queue_wait_seconds = 0.0;
  double exec_seconds = 0.0;
  bool plan_cache_hit = false;
  bool reoptimized = false;
};

/// The serving layer (ROADMAP north star): a concurrent, multi-tenant
/// refresh engine on top of the paper's single-run S/C design.
///
///   Submit(job) -> admission queue -> worker -> BudgetBroker::Acquire
///     -> PlanCache lookup / opt::AlternatingOptimize at the granted
///        budget -> runtime::Controller::RunWithBudget -> Release
///
/// N workers drive independent Controllers against one shared
/// ThrottledDisk; the BudgetBroker guarantees that the sum of all
/// concurrent Memory-Catalog reservations never exceeds the global
/// budget, with per-tenant quotas and priority-aware admission. Jobs
/// whose flagged set cannot be funded at their granted budget are
/// re-optimized before execution, never rejected. With
/// max_intra_job_lanes > 1, each job additionally leases intra-job
/// execution lanes from a ParallelismBroker and runs its DAG on the
/// Controller's stage-scheduled parallel runtime — executing on the
/// service-wide persistent LanePool, so back-to-back jobs reuse lane
/// threads instead of constructing a pool per run; once the plan is
/// known, budget beyond the plan's needs is handed back to the
/// BudgetBroker early (grant renegotiation).
///
/// With share_catalog (the default), every worker's runs are routed
/// through one content-keyed storage::SharedCatalog: tenants refreshing
/// the same content read — and reuse outright — each other's resident
/// outputs instead of recomputing them, the sharing-aware pre-pass
/// re-costs already-resident nodes before planning, and pinned cross-job
/// bytes are charged to the reading tenant's quota once per content key.
class RefreshService {
 public:
  RefreshService(storage::ThrottledDisk* disk, ServiceOptions options);
  ~RefreshService();

  RefreshService(const RefreshService&) = delete;
  RefreshService& operator=(const RefreshService&) = delete;

  /// Enqueues a job; the future resolves when the job finishes (check
  /// result.status — execution failures are reported, not thrown).
  /// Throws std::invalid_argument for a null workload and
  /// std::runtime_error after Shutdown.
  std::future<JobResult> Submit(RefreshJobSpec spec);

  /// Submit variant that also returns the job id, so the caller can
  /// Cancel() the job later.
  struct JobHandle {
    std::uint64_t job_id = 0;
    std::future<JobResult> future;
  };
  JobHandle SubmitJob(RefreshJobSpec spec);

  /// Cooperatively cancels a submitted job. Queued jobs finish with
  /// JobStatus::kCancelled without running; a job blocked in budget
  /// arbitration abandons its wait; an executing job stops at the next
  /// stage-dispatch / node / morsel-claim / materialize boundary, with
  /// every grant, lane lease, shared pin, and reservation released and
  /// no partial MV published. Returns false when the job already
  /// finished (or was never submitted); cancellation of a finished job
  /// is a no-op, not an error.
  bool Cancel(std::uint64_t job_id);

  /// Stops accepting work. With `drain` (default) runs every queued job
  /// to completion first; otherwise pending jobs fail with a "service
  /// shutting down" report. Idempotent; also called by the destructor.
  void Shutdown(bool drain = true);

  void SetTenantQuota(const std::string& tenant, std::int64_t quota_bytes);

  const ServiceMetrics& metrics() const { return metrics_; }
  const BudgetBroker& broker() const { return broker_; }
  const ParallelismBroker& lanes_broker() const { return lanes_broker_; }
  /// The service-wide executor pool every job's parallel run borrows its
  /// lanes from (thread-start counter shows steady-state reuse).
  const runtime::LanePool& lane_pool() const { return lane_pool_; }
  /// How the thread budget was split (workers actually spawned).
  const ParallelismSplit& parallelism() const { return split_; }
  const PlanCache& plan_cache() const { return plan_cache_; }
  PlanCache& plan_cache() { return plan_cache_; }
  /// The cross-job shared residency layer every worker's runs publish to
  /// and read from (ServiceOptions::share_catalog).
  const storage::SharedCatalog& shared_catalog() const {
    return shared_catalog_;
  }
  std::size_t queue_depth() const;
  const ServiceOptions& options() const { return options_; }
  /// Unified metrics registry (tentpole of the observability layer):
  /// job counters and latency histograms recorded by the service, plus
  /// callback gauges mirroring the LanePool, SharedCatalog, BudgetBroker,
  /// and PlanCache counters. See README "Observability" for the full
  /// metric-name table.
  const obs::Registry& registry() const { return registry_; }
  obs::Registry& registry() { return registry_; }
  /// Prometheus text exposition of registry().
  std::string PrometheusText() const {
    return registry_.ToPrometheusText();
  }
  /// The active trace recorder (options().trace, the owned recorder
  /// behind trace_path, or null when tracing is off).
  obs::TraceRecorder* trace() const { return trace_; }

 private:
  struct Job {
    std::uint64_t id = 0;
    RefreshJobSpec spec;
    std::promise<JobResult> promise;
    double submit_seconds = 0.0;
    /// Set once the budget grant is held; lets FailJob split queue wait
    /// from execution time for jobs that die mid-run.
    double admit_seconds = 0.0;
    std::uint64_t fingerprint = 0;
    /// Cooperative cancellation flag shared by Cancel(), the deadline,
    /// and the job's Controller. Lives as long as the Job (shared_ptr),
    /// so a late Cancel() after completion touches valid memory.
    runtime::CancelToken cancel;
  };
  struct QueueOrder {
    bool operator()(const std::shared_ptr<Job>& a,
                    const std::shared_ptr<Job>& b) const {
      if (a->spec.priority != b->spec.priority) {
        return a->spec.priority < b->spec.priority;  // max-heap on priority
      }
      return a->id > b->id;  // FIFO within a priority level
    }
  };

  void WorkerLoop(int worker_index);
  JobResult Execute(Job& job);
  /// Common terminal bookkeeping for Execute paths: derives
  /// JobResult::status from the report, emits the trace tail, and
  /// records registry counters plus the metrics observation.
  /// `held_grant` gates the budget-release trace instant (false on the
  /// cancelled-while-waiting path, where no grant was ever held).
  JobResult FinishJob(Job& job, JobResult result, double exec_start,
                      const std::string& trace_args, bool held_grant);
  /// Resolves `job`'s promise with a failed report and records the
  /// failure in the metrics registry.
  void FailJob(Job& job, const std::string& error,
               JobStatus status = JobStatus::kFailed);
  /// Drops `job.id` from the cancellation registry (terminal states
  /// only).
  void ForgetJob(std::uint64_t job_id);
  /// Wires the callback gauges mirroring LanePool / SharedCatalog /
  /// BudgetBroker / PlanCache monitoring counters into registry_.
  void RegisterComponentGauges();

  storage::ThrottledDisk* disk_;
  const ServiceOptions options_;
  const ParallelismSplit split_;
  BudgetBroker broker_;
  ParallelismBroker lanes_broker_;
  runtime::LanePool lane_pool_;
  PlanCache plan_cache_;
  storage::SharedCatalog shared_catalog_;
  ServiceMetrics metrics_;
  /// Owned recorder behind ServiceOptions::trace_path (null when the
  /// caller supplied one or tracing is off).
  std::unique_ptr<obs::TraceRecorder> owned_trace_;
  obs::TraceRecorder* trace_ = nullptr;  // the active recorder, if any
  /// Declared after every component it mirrors: its callback gauges read
  /// lane_pool_ / shared_catalog_ / broker_ / plan_cache_, so it must be
  /// destroyed first.
  obs::Registry registry_;
  bool trace_written_ = false;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::priority_queue<std::shared_ptr<Job>,
                      std::vector<std::shared_ptr<Job>>, QueueOrder>
      queue_;
  bool accepting_ = true;
  bool stopping_ = false;
  std::uint64_t next_job_id_ = 1;
  /// Cancellation registry: every job from Submit until its promise is
  /// resolved. Cancel() flips the token here and pokes the broker.
  std::map<std::uint64_t, std::shared_ptr<Job>> active_jobs_;
  std::vector<std::thread> workers_;
};

}  // namespace sc::service

#endif  // SC_SERVICE_SERVICE_H_
