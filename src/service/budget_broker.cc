#include "service/budget_broker.h"

#include <algorithm>
#include <chrono>

#include "common/clock.h"

namespace sc::service {

namespace {

// An out-of-range fraction (typo, NaN) would make every floor
// unsatisfiable and wedge admission forever.
BudgetBrokerOptions Sanitized(BudgetBrokerOptions options) {
  if (!(options.min_grant_fraction >= 0.0 &&
        options.min_grant_fraction <= 1.0)) {
    options.min_grant_fraction = 1.0;
  }
  return options;
}

}  // namespace

BudgetBroker::BudgetBroker(BudgetBrokerOptions options)
    : options_(Sanitized(std::move(options))) {}

std::int64_t BudgetBroker::QuotaFor(const std::string& tenant) const {
  auto it = quotas_.find(tenant);
  const std::int64_t quota =
      it != quotas_.end() ? it->second : options_.default_tenant_quota;
  return quota <= 0 ? options_.global_budget : quota;
}

std::int64_t BudgetBroker::HeadroomLocked(
    const std::string& tenant) const {
  std::int64_t reserved = 0;
  if (auto it = tenant_reserved_.find(tenant);
      it != tenant_reserved_.end()) {
    reserved = it->second;
  }
  std::int64_t shared = 0;
  if (auto it = tenant_shared_.find(tenant); it != tenant_shared_.end()) {
    shared = it->second;
  }
  return std::max<std::int64_t>(0, QuotaFor(tenant) - reserved - shared);
}

std::int64_t BudgetBroker::ClampTargetLocked(
    const std::string& tenant, std::int64_t requested_bytes) const {
  return std::max<std::int64_t>(
      0, std::min({requested_bytes, QuotaFor(tenant),
                   options_.global_budget}));
}

std::int64_t BudgetBroker::FloorFor(std::int64_t target) const {
  if (target == 0) return 0;
  return std::max<std::int64_t>(
      1, static_cast<std::int64_t>(static_cast<double>(target) *
                                   options_.min_grant_fraction));
}

bool BudgetBroker::Precedes(const Waiter& a, const Waiter& b) {
  if (a.priority != b.priority) return a.priority > b.priority;
  return a.seq < b.seq;
}

void BudgetBroker::ReserveLocked(const std::string& tenant,
                                 std::int64_t bytes) {
  reserved_ += bytes;
  tenant_reserved_[tenant] += bytes;
  peak_reserved_ = std::max(peak_reserved_, reserved_);
}

BudgetGrant BudgetBroker::MakeGrantLocked(const std::string& tenant,
                                          std::int64_t bytes) {
  BudgetGrant grant;
  grant.id = next_grant_id_++;
  grant.tenant = tenant;
  grant.bytes = bytes;
  ReserveLocked(tenant, bytes);
  return grant;
}

void BudgetBroker::AdmitWaitersLocked() {
  bool blocked = false;
  for (Waiter& w : waiters_) {
    if (w.admitted) continue;
    // Funding terms are recomputed from the *current* quota and pool
    // state on every pass, so quota changes made while a request waits
    // take effect (and can never strand a waiter behind a stale floor).
    const std::int64_t target = ClampTargetLocked(w.tenant, w.requested);
    if (target == 0) {
      // Zero-byte grants reserve nothing: admit unconditionally, even
      // past an unfundable head.
      w.granted = 0;
      w.admitted = true;
      continue;
    }
    const std::int64_t floor = FloorFor(target);
    const std::int64_t headroom = HeadroomLocked(w.tenant);
    if (std::min(target, headroom) < floor) {
      // The waiter is stalled on its own tenant's quota, not the pool:
      // only that tenant's releases can unblock it, so holding the rest
      // of the queue behind it would be a pointless convoy. Skip it.
      continue;
    }
    // Strict head-of-line on *pool* shortage: an unfundable waiter
    // blocks every lower-precedence (positive) request, so
    // large/high-priority requests cannot be starved by small ones.
    if (blocked) continue;
    const std::int64_t free = options_.global_budget - reserved_;
    const std::int64_t fundable =
        std::max<std::int64_t>(0, std::min({target, free, headroom}));
    if (fundable < floor) {
      blocked = true;
      continue;
    }
    w.granted = fundable;
    w.admitted = true;
    ReserveLocked(w.tenant, fundable);
  }
}

BudgetGrant BudgetBroker::Acquire(const std::string& tenant,
                                  std::int64_t requested_bytes,
                                  int priority,
                                  const runtime::CancelToken* cancel) {
  // Fault probe before the request queues: a firing rule rejects the
  // admission outright and can never strand reserved bytes or a waiter.
  if (options_.fault_injector != nullptr) {
    options_.fault_injector->MaybeThrow(fault::Site::kBudgetGrant, tenant);
  }
  std::unique_lock<std::mutex> lock(mutex_);
  Waiter waiter;
  waiter.tenant = tenant;
  waiter.requested = std::max<std::int64_t>(0, requested_bytes);
  waiter.priority = priority;
  waiter.seq = next_seq_++;

  auto pos = std::find_if(
      waiters_.begin(), waiters_.end(),
      [&](const Waiter& other) { return Precedes(waiter, other); });
  auto it = waiters_.insert(pos, std::move(waiter));

  AdmitWaitersLocked();
  cv_.notify_all();
  for (;;) {
    if (it->admitted) break;
    if (cancel != nullptr && cancel->cancelled()) break;
    const double deadline =
        cancel != nullptr ? cancel->deadline_seconds() : 0.0;
    if (deadline > 0.0) {
      // Bounded wait so a deadline fires without anyone calling Poke().
      const double remaining = deadline - MonotonicSeconds();
      if (remaining <= 0.0) continue;  // re-probe: token latches kDeadline
      cv_.wait_for(lock, std::chrono::duration<double>(remaining));
    } else {
      cv_.wait(lock);
    }
  }

  if (!it->admitted) {
    // Cancelled while queued: withdraw the request. Nothing was reserved
    // for it, but its departure can unblock head-of-line admission.
    waiters_.erase(it);
    AdmitWaitersLocked();
    cv_.notify_all();
    return BudgetGrant{};
  }

  BudgetGrant grant;
  grant.id = next_grant_id_++;
  grant.tenant = it->tenant;
  grant.bytes = it->granted;  // already reserved by AdmitWaitersLocked
  waiters_.erase(it);
  return grant;
}

BudgetGrant BudgetBroker::TryAcquire(const std::string& tenant,
                                     std::int64_t requested_bytes,
                                     int priority) {
  std::lock_guard<std::mutex> lock(mutex_);
  // Never jump the admission queue: fail if any pending waiter precedes
  // this request.
  for (const Waiter& w : waiters_) {
    if (!w.admitted && w.priority >= priority) return BudgetGrant{};
  }
  const std::int64_t target = ClampTargetLocked(tenant, requested_bytes);
  const std::int64_t headroom = HeadroomLocked(tenant);
  const std::int64_t free = options_.global_budget - reserved_;
  const std::int64_t fundable =
      std::max<std::int64_t>(0, std::min({target, free, headroom}));
  if (target > 0 && fundable < FloorFor(target)) return BudgetGrant{};
  return MakeGrantLocked(tenant, fundable);
}

void BudgetBroker::Release(BudgetGrant* grant) {
  if (grant == nullptr || !grant->valid()) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    reserved_ -= grant->bytes;
    tenant_reserved_[grant->tenant] -= grant->bytes;
    AdmitWaitersLocked();
  }
  cv_.notify_all();
  grant->id = 0;
  grant->bytes = 0;
}

void BudgetBroker::ReturnUnused(BudgetGrant* grant, std::int64_t bytes) {
  if (grant == nullptr || !grant->valid() || bytes <= 0) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const std::int64_t returned = std::min(bytes, grant->bytes);
    if (returned <= 0) return;
    reserved_ -= returned;
    tenant_reserved_[grant->tenant] -= returned;
    grant->bytes -= returned;
    AdmitWaitersLocked();
  }
  cv_.notify_all();
}

void BudgetBroker::PinShared(const std::string& tenant, std::uint64_t key,
                             std::int64_t bytes) {
  if (bytes < 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  SharedCharge& charge = shared_pins_[tenant][key];
  if (charge.pins++ == 0) {
    charge.bytes = bytes;
    tenant_shared_[tenant] += bytes;
  }
  // Charging only shrinks headroom: no waiter can become fundable.
}

void BudgetBroker::UnpinShared(const std::string& tenant,
                               std::uint64_t key) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto tenant_it = shared_pins_.find(tenant);
    if (tenant_it == shared_pins_.end()) return;
    auto key_it = tenant_it->second.find(key);
    if (key_it == tenant_it->second.end()) return;
    if (--key_it->second.pins > 0) return;
    tenant_shared_[tenant] -= key_it->second.bytes;
    tenant_it->second.erase(key_it);
    if (tenant_it->second.empty()) shared_pins_.erase(tenant_it);
    // Released headroom can unblock this tenant's quota-stalled waiters.
    AdmitWaitersLocked();
  }
  cv_.notify_all();
}

std::int64_t BudgetBroker::tenant_shared_bytes(
    const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = tenant_shared_.find(tenant);
  return it == tenant_shared_.end() ? 0 : it->second;
}

void BudgetBroker::SetTenantQuota(const std::string& tenant,
                                  std::int64_t quota_bytes) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    quotas_[tenant] = quota_bytes;
    AdmitWaitersLocked();
  }
  cv_.notify_all();
}

void BudgetBroker::Poke() {
  // Empty critical section: pairs the notify with the waiters' predicate
  // re-check so a cancel flag set between check and wait is never missed.
  { std::lock_guard<std::mutex> lock(mutex_); }
  cv_.notify_all();
}

std::int64_t BudgetBroker::reserved_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return reserved_;
}

std::int64_t BudgetBroker::free_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return options_.global_budget - reserved_;
}

std::int64_t BudgetBroker::peak_reserved_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return peak_reserved_;
}

std::int64_t BudgetBroker::tenant_reserved_bytes(
    const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = tenant_reserved_.find(tenant);
  return it == tenant_reserved_.end() ? 0 : it->second;
}

std::size_t BudgetBroker::waiting_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t count = 0;
  for (const Waiter& w : waiters_) {
    if (!w.admitted) ++count;
  }
  return count;
}

}  // namespace sc::service
