#ifndef SC_SERVICE_BUDGET_BROKER_H_
#define SC_SERVICE_BUDGET_BROKER_H_

#include <condition_variable>
#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <string>

#include "fault/fault.h"
#include "runtime/cancel.h"

namespace sc::service {

/// A funded slice of the global Memory-Catalog budget. Obtained from
/// BudgetBroker::Acquire / TryAcquire; must be handed back via Release.
/// `bytes` may be smaller than the requested amount (partial funding) —
/// the holder is expected to re-optimize its plan at the granted budget.
struct BudgetGrant {
  std::uint64_t id = 0;
  std::string tenant;
  std::int64_t bytes = 0;
  bool valid() const { return id != 0; }
};

struct BudgetBrokerOptions {
  /// Total Memory-Catalog bytes shared by all concurrent refresh jobs.
  std::int64_t global_budget = 256LL * 1024 * 1024;
  /// Cap on any single tenant's outstanding reservations. 0 = no cap
  /// (bounded only by the global budget). Per-tenant overrides via
  /// SetTenantQuota.
  std::int64_t default_tenant_quota = 0;
  /// Minimum fraction of the (quota-clamped) request that must be
  /// fundable before a waiter is admitted. Lower values favor admission
  /// throughput over per-job catalog size; granted jobs re-optimize at
  /// their funded budget.
  double min_grant_fraction = 0.25;
  /// Seeded fault injector probed at Site::kBudgetGrant on every
  /// blocking Acquire (fault::FaultError thrown before the request
  /// queues, so a firing rule never strands reserved bytes). Not owned;
  /// nullptr disables.
  fault::FaultInjector* fault_injector = nullptr;
};

/// Arbitrates one global Memory-Catalog budget across concurrent refresh
/// jobs (the serving-layer counterpart of the paper's single-run budget
/// `M`). Invariant: the sum of outstanding grants never exceeds the
/// global budget, and no tenant's outstanding grants exceed its quota.
///
/// Admission is strict priority order (higher `priority` first, FIFO
/// within a priority level): a newly arrived high-priority request
/// preempts — i.e. is funded before — every lower-priority waiter, and a
/// waiter the *pool* cannot yet fund blocks admission of everything
/// behind it, so large requests cannot be starved by a stream of small
/// ones. Waiters stalled only by their own tenant's quota are skipped
/// (they wait for their tenant's releases without convoying others), and
/// zero-byte requests are always admitted immediately.
///
/// Thread-safe; Acquire blocks, TryAcquire does not.
class BudgetBroker {
 public:
  explicit BudgetBroker(BudgetBrokerOptions options);

  BudgetBroker(const BudgetBroker&) = delete;
  BudgetBroker& operator=(const BudgetBroker&) = delete;

  /// Blocks until the broker can fund at least the minimum acceptable
  /// slice of `requested_bytes` for `tenant`, then returns the grant:
  /// min(request, global free, tenant quota headroom), clamped to the
  /// global budget. A request of 0 bytes is granted immediately (the job
  /// runs unoptimized, nothing kept in memory). With a `cancel` token
  /// the wait is interruptible: once the token cancels (explicitly —
  /// wake the broker with Poke() — or by deadline), the waiter is
  /// removed from the admission queue and an *invalid* grant is
  /// returned; callers must check valid(). An already-admitted waiter
  /// returns its grant even if cancelled (the caller releases it).
  BudgetGrant Acquire(const std::string& tenant,
                      std::int64_t requested_bytes, int priority = 0,
                      const runtime::CancelToken* cancel = nullptr);

  /// Non-blocking variant: returns an invalid grant if the request cannot
  /// be funded right now (or if waiters of higher precedence are queued —
  /// TryAcquire never jumps the admission queue).
  BudgetGrant TryAcquire(const std::string& tenant,
                         std::int64_t requested_bytes, int priority = 0);

  /// Returns the granted bytes to the pool and wakes fundable waiters.
  /// Idempotent: releasing an already-released or invalid grant is a
  /// no-op.
  void Release(BudgetGrant* grant);

  /// Grant renegotiation: hands `bytes` of `grant` back to the pool
  /// before the run completes (e.g. the re-optimized plan needs less
  /// memory than the broker funded), shrinking the grant in place and
  /// waking head-of-line waiters that the returned bytes can now fund.
  /// Clamped to the grant's outstanding bytes; no-op on invalid grants
  /// or non-positive amounts.
  void ReturnUnused(BudgetGrant* grant, std::int64_t bytes);

  /// Cross-job shared-residency accounting: a running job of `tenant`
  /// pinned the shared-catalog entry `key` (`bytes` large). The bytes
  /// are charged against the tenant's quota headroom — shared residency
  /// is memory the tenant is actively relying on — but only once per
  /// content key, no matter how many of the tenant's jobs pin it
  /// concurrently, and never against the global grant pool (the shared
  /// layer funds itself; double-charging it against grants would shrink
  /// the pool below what the catalog actually holds).
  void PinShared(const std::string& tenant, std::uint64_t key,
                 std::int64_t bytes);

  /// Drops one pin of `key` by `tenant`; at zero pins the charge is
  /// released and fundable waiters are re-admitted. No-op if unknown.
  void UnpinShared(const std::string& tenant, std::uint64_t key);

  /// Shared-catalog bytes currently charged to `tenant`'s quota.
  std::int64_t tenant_shared_bytes(const std::string& tenant) const;

  /// Sets `tenant`'s reservation cap (0 = uncapped). Applies to future
  /// admissions only; outstanding grants are never revoked.
  void SetTenantQuota(const std::string& tenant, std::int64_t quota_bytes);

  /// Wakes every blocked Acquire so it can re-check its cancel token.
  /// Called by RefreshService::Cancel — a cancelled job may be sitting
  /// in the admission queue rather than executing.
  void Poke();

  std::int64_t global_budget() const { return options_.global_budget; }
  std::int64_t reserved_bytes() const;
  std::int64_t free_bytes() const;
  /// High-water mark of reserved_bytes — the witness that concurrent jobs
  /// never over-committed the catalog.
  std::int64_t peak_reserved_bytes() const;
  std::int64_t tenant_reserved_bytes(const std::string& tenant) const;
  std::size_t waiting_count() const;

 private:
  struct Waiter {
    std::string tenant;
    std::int64_t requested = 0;  // raw request; funding terms are
                                 // recomputed at each admission pass
    int priority = 0;
    std::uint64_t seq = 0;
    bool admitted = false;
    std::int64_t granted = 0;
  };

  struct SharedCharge {
    std::int64_t pins = 0;
    std::int64_t bytes = 0;
  };

  /// Effective quota for `tenant` (0 = uncapped → global budget).
  std::int64_t QuotaFor(const std::string& tenant) const;
  /// Quota headroom for `tenant`: quota minus outstanding grants minus
  /// charged shared-residency bytes. Caller holds the lock.
  std::int64_t HeadroomLocked(const std::string& tenant) const;
  /// Request clamped to the tenant quota and the global budget.
  std::int64_t ClampTargetLocked(const std::string& tenant,
                                 std::int64_t requested_bytes) const;
  /// Minimum acceptable grant for a clamped target.
  std::int64_t FloorFor(std::int64_t target) const;
  /// True if the waiter precedes `other` in admission order.
  static bool Precedes(const Waiter& a, const Waiter& b);
  /// Admits every fundable waiter in strict priority order (stops at the
  /// first one that cannot be funded; zero-byte requests are admitted
  /// unconditionally). Caller holds the lock.
  void AdmitWaitersLocked();
  void ReserveLocked(const std::string& tenant, std::int64_t bytes);
  BudgetGrant MakeGrantLocked(const std::string& tenant,
                              std::int64_t bytes);

  const BudgetBrokerOptions options_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::list<Waiter> waiters_;  // kept sorted by admission order
  std::map<std::string, std::int64_t> quotas_;
  std::map<std::string, std::int64_t> tenant_reserved_;
  std::map<std::string, std::map<std::uint64_t, SharedCharge>>
      shared_pins_;
  std::map<std::string, std::int64_t> tenant_shared_;
  std::int64_t reserved_ = 0;
  std::int64_t peak_reserved_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t next_grant_id_ = 1;
};

}  // namespace sc::service

#endif  // SC_SERVICE_BUDGET_BROKER_H_
