#include "service/service.h"

#include <algorithm>
#include <optional>
#include <stdexcept>
#include <utility>

#include "common/clock.h"
#include "common/fnv.h"
#include "common/str_util.h"
#include "graph/fingerprint.h"
#include "opt/memory_usage.h"
#include "opt/optimizer.h"
#include "opt/stages.h"

namespace sc::service {

RefreshService::RefreshService(storage::ThrottledDisk* disk,
                               ServiceOptions options)
    : disk_(disk),
      options_(std::move(options)),
      split_(ParallelismBroker::Split(options_.num_workers,
                                      options_.max_intra_job_lanes)),
      broker_([&] {
        BudgetBrokerOptions broker_options;
        broker_options.global_budget = options_.global_budget;
        broker_options.default_tenant_quota = options_.default_tenant_quota;
        broker_options.min_grant_fraction = options_.min_grant_fraction;
        broker_options.fault_injector = options_.fault_injector;
        return broker_options;
      }()),
      lanes_broker_(std::max(1, options_.num_workers),
                    options_.max_intra_job_lanes),
      lane_pool_(runtime::LanePoolOptions{
          std::max(1, options_.num_workers),
          options_.lane_idle_shutdown_seconds}),
      plan_cache_(options_.plan_cache_capacity),
      shared_catalog_(options_.global_budget, 8, [&] {
        storage::SpillOptions spill;
        spill.directory = options_.spill_directory;
        spill.max_bytes = options_.spill_max_bytes;
        spill.recover = options_.spill_recover;
        return spill;
      }()) {
  // Trace wiring happens before any worker spawns: the SharedCatalog's
  // recorder hook must be set before concurrent use.
  if (options_.trace != nullptr) {
    trace_ = options_.trace;
  } else if (!options_.trace_path.empty()) {
    owned_trace_ = std::make_unique<obs::TraceRecorder>();
    trace_ = owned_trace_.get();
  }
  shared_catalog_.SetTraceRecorder(trace_);
  // Fault wiring also precedes the workers: injection points on the
  // shared disk, the shared catalog, and the broker (via its options)
  // must be armed before any job can reach them.
  if (options_.fault_injector != nullptr) {
    shared_catalog_.SetFaultInjector(options_.fault_injector);
    if (disk_ != nullptr) disk_->SetFaultInjector(options_.fault_injector);
  }
  RegisterComponentGauges();
  workers_.reserve(static_cast<std::size_t>(split_.workers));
  for (int i = 0; i < split_.workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

void RefreshService::RegisterComponentGauges() {
  // Callback gauges mirror monitoring counters that already live on the
  // components; the callbacks run at exposition/snapshot time only, so
  // mirroring costs nothing on the hot path. Names are part of the
  // documented surface (README "Observability") — keep them stable.
  struct Mirror {
    const char* name;
    const char* help;
    std::function<double()> fn;
  };
  const Mirror mirrors[] = {
      {"sc_lane_pool_busy_seconds",
       "Cumulative seconds lanes spent executing tasks",
       [this] { return lane_pool_.busy_seconds(); }},
      {"sc_lane_pool_threads_started",
       "Cumulative lane threads ever started (thread-churn witness)",
       [this] { return static_cast<double>(lane_pool_.threads_started()); }},
      {"sc_lane_pool_tasks_completed", "Tasks completed by pool lanes",
       [this] { return static_cast<double>(lane_pool_.tasks_completed()); }},
      {"sc_lane_pool_live_lanes", "Lane threads currently alive",
       [this] { return static_cast<double>(lane_pool_.live_lanes()); }},
      {"sc_lane_pool_idle_lanes", "Lane threads parked waiting for work",
       [this] { return static_cast<double>(lane_pool_.idle_lanes()); }},
      {"sc_shared_catalog_used_bytes",
       "Bytes resident in the cross-job shared catalog",
       [this] { return static_cast<double>(shared_catalog_.used_bytes()); }},
      {"sc_shared_catalog_pinned_bytes",
       "Resident bytes currently holding at least one pin",
       [this] {
         return static_cast<double>(shared_catalog_.pinned_bytes());
       }},
      {"sc_shared_catalog_peak_bytes",
       "High-water mark of shared-catalog residency",
       [this] { return static_cast<double>(shared_catalog_.peak_bytes()); }},
      {"sc_shared_catalog_hits", "Counted Pin() lookups served resident",
       [this] { return static_cast<double>(shared_catalog_.hits()); }},
      {"sc_shared_catalog_misses",
       "Counted Pin() lookups that missed (damping-bounded per epoch)",
       [this] { return static_cast<double>(shared_catalog_.misses()); }},
      {"sc_shared_catalog_damped_lookups",
       "Miss-path probes short-circuited by negative-lookup damping",
       [this] {
         return static_cast<double>(shared_catalog_.damped_lookups());
       }},
      {"sc_shared_catalog_publishes", "Successful shared-catalog inserts",
       [this] { return static_cast<double>(shared_catalog_.publishes()); }},
      {"sc_shared_catalog_rejects", "Failed shared-catalog inserts",
       [this] { return static_cast<double>(shared_catalog_.rejects()); }},
      {"sc_shared_catalog_evictions",
       "Entries dropped under shared-catalog budget pressure",
       [this] { return static_cast<double>(shared_catalog_.evictions()); }},
      {"sc_shared_spill_bytes",
       "Compressed bytes currently parked in shared-catalog spill files",
       [this] {
         return static_cast<double>(shared_catalog_.spill_bytes());
       }},
      {"sc_shared_refills_total",
       "Pins served by refilling a spilled entry instead of recompute",
       [this] {
         return static_cast<double>(shared_catalog_.spill_refills());
       }},
      {"sc_shared_spills_total",
       "Evictions demoted to compressed spill files",
       [this] { return static_cast<double>(shared_catalog_.spills()); }},
      {"sc_corrupt_files_total",
       "Damaged spill files detected and removed, never served",
       [this] {
         return static_cast<double>(shared_catalog_.corrupt_files());
       }},
      {"sc_recovered_entries_total",
       "Spilled entries adopted from the manifest at startup recovery",
       [this] {
         return static_cast<double>(shared_catalog_.recovered_entries());
       }},
      {"sc_recovered_bytes",
       "Compressed bytes adopted at startup recovery",
       [this] {
         return static_cast<double>(shared_catalog_.recovered_bytes());
       }},
      {"sc_spill_orphans_removed_total",
       "Unmanifested spill-directory files removed at startup",
       [this] {
         return static_cast<double>(shared_catalog_.orphans_removed());
       }},
      {"sc_manifest_compactions_total",
       "Atomic rotate/compact cycles of the spill manifest journal",
       [this] {
         return static_cast<double>(shared_catalog_.manifest_compactions());
       }},
      {"sc_dict_columns_total",
       "Dictionary-encoded string columns materialized process-wide",
       [this] {
         return static_cast<double>(engine::Column::dict_columns_created());
       }},
      {"sc_budget_reserved_bytes",
       "Memory-catalog bytes currently granted to running jobs",
       [this] { return static_cast<double>(broker_.reserved_bytes()); }},
      {"sc_budget_free_bytes", "Ungranted memory-catalog bytes",
       [this] { return static_cast<double>(broker_.free_bytes()); }},
      {"sc_budget_peak_reserved_bytes",
       "High-water mark of concurrently granted bytes",
       [this] {
         return static_cast<double>(broker_.peak_reserved_bytes());
       }},
      {"sc_budget_waiting_jobs", "Jobs blocked in budget arbitration",
       [this] { return static_cast<double>(broker_.waiting_count()); }},
      {"sc_plan_cache_hits", "Plan-cache lookups served",
       [this] { return static_cast<double>(plan_cache_.stats().hits); }},
      {"sc_plan_cache_misses", "Plan-cache lookups that missed",
       [this] { return static_cast<double>(plan_cache_.stats().misses); }},
      {"sc_plan_cache_insertions", "Plans inserted into the cache",
       [this] {
         return static_cast<double>(plan_cache_.stats().insertions);
       }},
      {"sc_plan_cache_evictions", "Plans evicted LRU under capacity",
       [this] {
         return static_cast<double>(plan_cache_.stats().evictions);
       }},
      {"sc_plan_cache_size", "Plans currently cached",
       [this] { return static_cast<double>(plan_cache_.size()); }},
      {"sc_queue_depth", "Jobs waiting in the admission queue",
       [this] { return static_cast<double>(queue_depth()); }},
      {"sc_starvation_seconds",
       "Longest wait among jobs queued right now",
       [this] { return metrics_.StarvationSeconds(); }},
  };
  for (const Mirror& m : mirrors) {
    registry_.RegisterCallbackGauge(m.name, m.help, {}, m.fn);
  }
}

RefreshService::~RefreshService() { Shutdown(/*drain=*/true); }

std::future<JobResult> RefreshService::Submit(RefreshJobSpec spec) {
  return SubmitJob(std::move(spec)).future;
}

RefreshService::JobHandle RefreshService::SubmitJob(RefreshJobSpec spec) {
  if (spec.workload == nullptr) {
    throw std::invalid_argument("RefreshService::Submit: null workload");
  }
  // Fingerprint outside the lock: it walks the whole graph.
  const std::uint64_t fingerprint = FingerprintGraph(spec.workload->graph);
  auto job = std::make_shared<Job>();
  job->spec = std::move(spec);
  job->submit_seconds = MonotonicSeconds();
  job->fingerprint = fingerprint;
  if (job->spec.deadline_seconds > 0.0) {
    // The deadline clock starts at submit: queue time counts against it.
    job->cancel.SetDeadline(job->submit_seconds +
                            job->spec.deadline_seconds);
  }
  JobHandle handle;
  handle.future = job->promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!accepting_) {
      throw std::runtime_error(
          "RefreshService::Submit: service is shut down");
    }
    job->id = next_job_id_++;
    handle.job_id = job->id;
    metrics_.JobQueued(job->id, job->spec.priority, job->submit_seconds);
    active_jobs_[job->id] = job;
    queue_.push(std::move(job));
  }
  cv_.notify_one();
  return handle;
}

bool RefreshService::Cancel(std::uint64_t job_id) {
  std::shared_ptr<Job> job;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = active_jobs_.find(job_id);
    if (it == active_jobs_.end()) return false;  // already finished
    job = it->second;
  }
  job->cancel.RequestCancel(runtime::CancelReason::kCancelled);
  // Wake the job wherever it blocks: budget arbitration re-probes its
  // token on notify; a queued job is checked at pickup; an executing job
  // polls the token at every boundary.
  broker_.Poke();
  cv_.notify_all();
  return true;
}

void RefreshService::ForgetJob(std::uint64_t job_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  active_jobs_.erase(job_id);
}

void RefreshService::Shutdown(bool drain) {
  std::vector<std::shared_ptr<Job>> rejected;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    accepting_ = false;
    if (!drain) {
      while (!queue_.empty()) {
        rejected.push_back(queue_.top());
        queue_.pop();
      }
    }
    // Workers exit once the queue is empty, so queued jobs drain first.
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& job : rejected) {
    FailJob(*job, "service shutting down");
  }
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  // All spans are recorded by now (workers joined); flush the owned
  // recorder's trace exactly once. A caller-supplied recorder is the
  // caller's to export.
  if (owned_trace_ != nullptr && !trace_written_ &&
      !options_.trace_path.empty()) {
    trace_written_ = true;
    obs::WriteChromeTraceFile(*owned_trace_, options_.trace_path);
  }
}

void RefreshService::SetTenantQuota(const std::string& tenant,
                                    std::int64_t quota_bytes) {
  broker_.SetTenantQuota(tenant, quota_bytes);
}

std::size_t RefreshService::queue_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

void RefreshService::FailJob(Job& job, const std::string& error,
                             JobStatus status) {
  JobResult result;
  result.job_id = job.id;
  result.tenant = job.spec.tenant;
  result.status = status;
  result.report.ok = false;
  result.report.error = error;
  if (status == JobStatus::kCancelled || status == JobStatus::kTimeout) {
    result.report.cancelled = true;
    result.report.cancel_reason = status == JobStatus::kTimeout
                                      ? runtime::CancelReason::kDeadline
                                      : runtime::CancelReason::kCancelled;
  }
  const double now = MonotonicSeconds();
  if (job.admit_seconds > 0.0) {
    // The job died mid-execution: time past admission is execution, not
    // queue wait.
    result.queue_wait_seconds = job.admit_seconds - job.submit_seconds;
    result.exec_seconds = now - job.admit_seconds;
  } else {
    result.queue_wait_seconds = now - job.submit_seconds;
  }
  metrics_.JobDequeued(job.id);
  JobObservation observation;
  observation.tenant = result.tenant;
  observation.priority = job.spec.priority;
  observation.ok = false;
  observation.status = status;
  observation.queue_wait_seconds = result.queue_wait_seconds;
  observation.exec_seconds = result.exec_seconds;
  metrics_.Record(observation);
  registry_
      .GetCounter("sc_jobs_total", "Finished refresh jobs",
                  {{"tenant", result.tenant},
                   {"status", JobStatusName(status)}})
      ->Increment();
  ForgetJob(job.id);
  job.promise.set_value(std::move(result));
}

void RefreshService::WorkerLoop(int worker_index) {
  // Worker threads are the jobs' coordinator threads: job lifecycle
  // spans, inline node executions, and the publish replay all land on
  // this track.
  obs::SetThreadTrack("worker-" + std::to_string(worker_index));
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      job = queue_.top();
      queue_.pop();
    }
    // Graceful degradation at pickup: a job whose shedding bound expired
    // while queued is dropped before it can consume budget or lanes, and
    // a job cancelled (or deadline-expired) while queued never runs.
    const double waited = MonotonicSeconds() - job->submit_seconds;
    if (job->spec.max_queue_wait_seconds > 0.0 &&
        waited > job->spec.max_queue_wait_seconds) {
      FailJob(*job, "job shed: queue wait exceeded max_queue_wait_seconds",
              JobStatus::kShed);
      continue;
    }
    if (job->cancel.cancelled()) {
      const bool deadline =
          job->cancel.reason() == runtime::CancelReason::kDeadline;
      FailJob(*job,
              deadline ? runtime::kDeadlineMessage
                       : runtime::kCancelledMessage,
              deadline ? JobStatus::kTimeout : JobStatus::kCancelled);
      continue;
    }
    try {
      job->promise.set_value(Execute(*job));
      ForgetJob(job->id);
    } catch (const std::exception& e) {
      FailJob(*job, std::string("internal service error: ") + e.what());
    }
  }
}

JobResult RefreshService::Execute(Job& job) {
  const workload::MvWorkload& wl = *job.spec.workload;
  JobResult result;
  result.job_id = job.id;
  result.tenant = job.spec.tenant;
  result.requested_budget =
      job.spec.requested_budget > 0 ? job.spec.requested_budget
      : options_.default_job_budget > 0
          ? options_.default_job_budget
          : options_.global_budget;

  // Trace the job's waiting states on this worker's track: time in the
  // admission queue (submit -> this worker picking it up), then time
  // blocked in budget arbitration. The args carry job id and tenant so
  // AnalyzeTrace can slice the breakdown per job.
  const bool tracing = trace_ != nullptr && trace_->enabled();
  const double picked_up_seconds = MonotonicSeconds();
  std::string job_args;
  if (tracing) {
    job_args = StrFormat("\"job\":%llu,\"tenant\":\"%s\"",
                         static_cast<unsigned long long>(job.id),
                         job.spec.tenant.c_str());
    trace_->Complete("job", "queued", job.submit_seconds,
                     picked_up_seconds - job.submit_seconds, job_args);
  }

  // Graceful degradation: under a deep backlog, ask the broker for less
  // than the job wanted. Smaller grants admit sooner and leave memory
  // for the queue behind this job; the plan is simply optimized at the
  // granted budget, the same path partial funding already exercises.
  std::int64_t budget_to_request = result.requested_budget;
  if (options_.overload_queue_depth > 0 &&
      queue_depth() > options_.overload_queue_depth) {
    double fraction = options_.overload_budget_fraction;
    if (!(fraction > 0.0 && fraction <= 1.0)) fraction = 1.0;
    budget_to_request = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(
               static_cast<double>(budget_to_request) * fraction));
    if (budget_to_request < result.requested_budget) {
      registry_
          .GetCounter("sc_jobs_degraded_total",
                      "Jobs admitted at a reduced budget under overload",
                      {{"tenant", result.tenant}})
          ->Increment();
    }
  }

  BudgetGrant grant = broker_.Acquire(job.spec.tenant, budget_to_request,
                                      job.spec.priority, &job.cancel);
  // Queue wait covers both the admission queue and budget arbitration:
  // the job is "waiting" until it holds everything it needs to run.
  job.admit_seconds = MonotonicSeconds();
  if (tracing) {
    trace_->Complete("job", "wait-budget", picked_up_seconds,
                     job.admit_seconds - picked_up_seconds, job_args);
    trace_->Instant(
        "budget", "grant",
        job_args + StrFormat(",\"bytes\":%lld",
                             static_cast<long long>(grant.bytes)));
  }
  metrics_.JobDequeued(job.id);
  result.queue_wait_seconds = job.admit_seconds - job.submit_seconds;
  result.granted_budget = grant.bytes;
  const double exec_start = job.admit_seconds;
  int lanes = 0;

  if (!grant.valid() && job.cancel.cancelled()) {
    // Cancelled (or deadline-expired) while blocked in budget
    // arbitration: the broker reserved nothing and no lanes are held,
    // so reporting is the only cleanup.
    const bool deadline =
        job.cancel.reason() == runtime::CancelReason::kDeadline;
    result.report.ok = false;
    result.report.cancelled = true;
    result.report.cancel_reason = deadline
                                      ? runtime::CancelReason::kDeadline
                                      : runtime::CancelReason::kCancelled;
    result.report.error =
        deadline ? runtime::kDeadlineMessage : runtime::kCancelledMessage;
    return FinishJob(job, std::move(result), exec_start, job_args,
                     /*held_grant=*/false);
  }

  try {
    // The run executes at the granted budget, so that is the cache key
    // that matters. On a miss, a cached requested-budget plan (from
    // fully-funded jobs) is reused outright when it already fits the
    // grant; otherwise the optimizer runs at the granted budget. With
    // intra-job lanes enabled the optimizer applies the stage-aware
    // ordering post-pass, so cached plans are widened exactly once.
    opt::AlternatingOptions optimizer_options = options_.optimizer;
    optimizer_options.widen_stages |= options_.max_intra_job_lanes > 1;

    // Sharing-aware pre-pass: snapshot which of this graph's outputs are
    // already resident in the cross-job shared layer. Residency-adjusted
    // plans are cached under a residency-salted key so steady-state
    // traffic with a stable resident set still skips optimization; the
    // base (residency-agnostic) plan stays cached under the plain
    // fingerprint and seeds the adjustment.
    std::vector<bool> resident;
    bool any_resident = false;
    std::uint64_t plan_key = job.fingerprint;
    std::vector<std::uint64_t> fps;  // outlives the controller runs
    if (options_.share_catalog && options_.sharing_aware_optimization) {
      fps = graph::FingerprintNodes(wl.graph, options_.shared_epoch);
      resident = shared_catalog_.ContainsAll(fps);
      // Only positive-score resident nodes change the optimization
      // problem (ReOptimizeWithResidency's own no-op test), so only
      // they salt the cache key — resident zero-score nodes (routine:
      // unflagged outputs are published too) must not mint duplicate
      // plan-cache entries for identical plans.
      std::uint64_t residency_salt = kFnvOffset;
      for (std::size_t v = 0; v < resident.size(); ++v) {
        if (resident[v] &&
            wl.graph.node(static_cast<graph::NodeId>(v)).speedup_score >
                0.0) {
          any_resident = true;
          FnvMixUint(&residency_salt, fps[v]);
        }
      }
      if (any_resident) plan_key = job.fingerprint ^ residency_salt;
    }

    opt::Plan plan;
    opt::StageDecomposition stages;
    // Plan resolution span: cache lookup plus any optimization it falls
    // back to — the non-execution cost a cache hit is supposed to erase.
    const double plan_start = tracing ? MonotonicSeconds() : 0.0;
    if (auto cached = plan_cache_.Lookup(plan_key, grant.bytes)) {
      plan = std::move(cached->plan);
      stages = std::move(cached->stages);
      result.plan_cache_hit = true;
    } else {
      // Base plan first: a direct hit under the plain fingerprint, a
      // requested-budget seed re-fit to the grant, or a fresh
      // optimization at the granted budget.
      bool base_hit = false;
      if (any_resident) {
        if (auto base = plan_cache_.Lookup(job.fingerprint, grant.bytes)) {
          plan = std::move(base->plan);
          base_hit = true;
        }
      }
      if (!base_hit) {
        std::optional<CachedPlan> seed;
        if (grant.bytes != result.requested_budget) {
          seed = plan_cache_.Lookup(job.fingerprint,
                                    result.requested_budget);
        }
        if (seed.has_value()) {
          const opt::AlternatingResult reopt = opt::ReOptimizeAtBudget(
              wl.graph, seed->plan, grant.bytes, optimizer_options);
          plan = reopt.plan;
          // iterations == 0 means the seed plan already fits the grant —
          // the optimizer did not run again.
          result.reoptimized = reopt.iterations > 0;
          result.plan_cache_hit = !result.reoptimized;
        } else {
          plan = opt::AlternatingOptimize(wl.graph, grant.bytes,
                                          optimizer_options)
                     .plan;
        }
        // Cache the base plan under the plain fingerprint so later jobs
        // (any residency state) can seed from it.
        if (any_resident) {
          plan_cache_.Insert(job.fingerprint, grant.bytes, plan,
                             opt::DecomposeStages(wl.graph, plan.order));
        }
      }
      if (any_resident) {
        const opt::AlternatingResult reopt =
            opt::ReOptimizeWithResidency(wl.graph, plan, grant.bytes,
                                         resident, optimizer_options);
        result.reoptimized = result.reoptimized || reopt.iterations > 0;
        // The hit flag keeps meaning "the optimizer did not run": a
        // base-plan hit that still re-optimized for residency is not a
        // cache hit. (The adjusted plan is cached below; steady traffic
        // with a stable resident set hits the salted key directly.)
        result.plan_cache_hit = base_hit && reopt.iterations == 0;
        plan = reopt.plan;
      }
      // Stage metadata is cached next to the plan: cache hits skip this
      // recomputation on every subsequent run.
      stages = opt::DecomposeStages(wl.graph, plan.order);
      plan_cache_.Insert(plan_key, grant.bytes, plan, stages);
    }
    if (tracing) {
      trace_->Complete(
          "plan", result.plan_cache_hit ? "cache-hit" : "optimize",
          plan_start, MonotonicSeconds() - plan_start, job_args);
    }

    // Grant renegotiation: the plan's peak memory need is now known, so
    // budget beyond need × slack goes back to the broker immediately,
    // waking head-of-line waiters instead of idling until Release. The
    // need is estimate-based, so skip it when any flagged node lacks a
    // size estimate (nothing trustworthy to keep by).
    if (options_.budget_return_slack >= 1.0 && grant.bytes > 0) {
      bool estimates_present = true;
      for (const graph::NodeId v : opt::FlaggedNodes(plan.flags)) {
        if (wl.graph.node(v).size_bytes <= 0) estimates_present = false;
      }
      const std::int64_t need = opt::PeakMemoryUsage(
          wl.graph, plan.order, plan.flags);
      const std::int64_t keep = static_cast<std::int64_t>(
          static_cast<double>(need) * options_.budget_return_slack);
      if (estimates_present && keep < grant.bytes) {
        result.returned_budget = grant.bytes - keep;
        broker_.ReturnUnused(&grant, result.returned_budget);
        if (tracing) {
          trace_->Instant(
              "budget", "return",
              job_args +
                  StrFormat(",\"bytes\":%lld",
                            static_cast<long long>(result.returned_budget)));
        }
      }
    }

    // Lease execution lanes, asking for no more than the plan's widest
    // antichain — a chain-shaped job must not hold lanes it cannot use.
    // (The cached decomposition already knows the width.)
    const int width = static_cast<int>(std::min<std::size_t>(
        stages.width(), static_cast<std::size_t>(options_.num_workers)));
    lanes = lanes_broker_.AcquireLanes(width);
    result.lanes = lanes;
    runtime::ControllerOptions controller_options;
    controller_options.background_materialize =
        options_.background_materialize;
    controller_options.max_parallel_nodes = lanes;
    controller_options.inline_node_cost_seconds =
        options_.inline_node_cost_seconds;
    controller_options.morsel_target_seconds =
        options_.morsel_target_seconds;
    controller_options.morsel_min_rows = options_.morsel_min_rows;
    controller_options.morsel_max_lanes = options_.morsel_max_lanes;
    controller_options.compress_residency = options_.compress_residency;
    // Parallel runs borrow threads from the service-wide pool — zero
    // thread construction per job in steady state.
    controller_options.lane_pool = &lane_pool_;
    // Fault tolerance: the job's token is polled at every stage /
    // node / morsel / materialize boundary, injected faults fire inside
    // the run, and transient failures retry per node with backoff.
    controller_options.cancel = &job.cancel;
    controller_options.faults = options_.fault_injector;
    controller_options.retry_limit = options_.retry_limit;
    controller_options.retry_backoff_ms = options_.retry_backoff_ms;
    // The run's node/publish/materialize spans join this job's slice of
    // the service trace.
    controller_options.trace = trace_;
    controller_options.trace_job_id = job.id;
    if (options_.share_catalog) {
      // All workers publish to and read from the one shared layer;
      // pinned cross-job bytes are charged to the reading tenant's
      // quota (once per content key) through the broker hook.
      controller_options.shared_catalog = &shared_catalog_;
      controller_options.shared_epoch = options_.shared_epoch;
      // Reuse the residency snapshot's fingerprints (empty or mismatched
      // vectors are recomputed by the controller).
      controller_options.node_fingerprints = &fps;
      controller_options.shared_pin_listener =
          [this, tenant = job.spec.tenant](std::uint64_t key,
                                           std::int64_t bytes,
                                           bool pinned) {
            if (pinned) {
              broker_.PinShared(tenant, key, bytes);
            } else {
              broker_.UnpinShared(tenant, key);
            }
          };
    }
    runtime::Controller controller(disk_, controller_options);
    // The grant, not the controller default, is the catalog budget.
    result.report = controller.RunWithBudget(wl, plan, grant.bytes,
                                             &stages);
    if (!result.report.ok && result.returned_budget > 0 &&
        result.report.error.find("Memory Catalog budget violated") !=
            std::string::npos) {
      // Actual output sizes overshot the estimates the renegotiation
      // trusted. Hand the shrunk grant back entirely, then re-acquire
      // the original funding level while holding nothing — a blocking
      // Acquire under a held grant could deadlock against the broker's
      // head-of-line admission. The fresh grant may still land below
      // the plan's budget (partial funding); then the standard
      // partial-grant path applies: re-optimize at the funded budget.
      broker_.Release(&grant);
      grant = broker_.Acquire(job.spec.tenant, result.granted_budget,
                              job.spec.priority, &job.cancel);
      if (!grant.valid() && job.cancel.cancelled()) {
        // Cancelled while re-acquiring: leave the budget-violation
        // report but flag the cancel so status comes out right.
        result.report.cancelled = true;
        result.report.cancel_reason =
            job.cancel.reason() == runtime::CancelReason::kDeadline
                ? runtime::CancelReason::kDeadline
                : runtime::CancelReason::kCancelled;
      } else {
        const opt::AlternatingResult reopt = opt::ReOptimizeAtBudget(
            wl.graph, plan, grant.bytes, optimizer_options);
        result.reoptimized = result.reoptimized || reopt.iterations > 0;
        // The retry plan may differ from the cached one; let the
        // controller derive its stages.
        result.report =
            controller.RunWithBudget(wl, reopt.plan, grant.bytes);
        result.returned_budget = std::max<std::int64_t>(
            0, result.granted_budget - grant.bytes);
      }
    }
  } catch (...) {
    if (lanes > 0) lanes_broker_.ReleaseLanes(lanes);
    broker_.Release(&grant);
    throw;
  }
  lanes_broker_.ReleaseLanes(lanes);
  broker_.Release(&grant);
  return FinishJob(job, std::move(result), exec_start, job_args,
                   /*held_grant=*/true);
}

JobResult RefreshService::FinishJob(Job& job, JobResult result,
                                    double exec_start,
                                    const std::string& trace_args,
                                    bool held_grant) {
  result.exec_seconds = MonotonicSeconds() - exec_start;
  if (trace_ != nullptr && trace_->enabled()) {
    if (held_grant) trace_->Instant("budget", "release", trace_args);
    trace_->Complete("job", "execute", exec_start, result.exec_seconds,
                     trace_args);
  }
  // Disposition taxonomy: the Controller reports *whether* the run was
  // cancelled and why; the service maps that to the job-level status.
  result.status =
      result.report.ok ? JobStatus::kOk
      : result.report.cancelled
          ? (result.report.cancel_reason ==
                     runtime::CancelReason::kDeadline
                 ? JobStatus::kTimeout
                 : JobStatus::kCancelled)
          : JobStatus::kFailed;

  registry_
      .GetCounter("sc_jobs_total", "Finished refresh jobs",
                  {{"tenant", result.tenant},
                   {"status", JobStatusName(result.status)}})
      ->Increment();
  if (result.report.node_retries > 0) {
    registry_
        .GetCounter("sc_job_retries_total",
                    "Per-node retries of transient failures",
                    {{"tenant", result.tenant}})
        ->Increment(result.report.node_retries);
  }
  registry_
      .GetHistogram("sc_job_queue_wait_seconds",
                    "Admission-queue + budget-arbitration wait per job")
      ->Observe(result.queue_wait_seconds);
  registry_
      .GetHistogram("sc_job_exec_seconds",
                    "Execution wall time per job (admission to finish)")
      ->Observe(result.exec_seconds);

  JobObservation observation;
  observation.tenant = result.tenant;
  observation.priority = job.spec.priority;
  observation.ok = result.report.ok;
  observation.status = result.status;
  observation.queue_wait_seconds = result.queue_wait_seconds;
  observation.exec_seconds = result.exec_seconds;
  observation.requested_bytes = result.requested_budget;
  observation.granted_bytes = result.granted_budget;
  observation.returned_bytes = result.returned_budget;
  observation.catalog_hits = result.report.catalog_hits;
  observation.catalog_misses = result.report.catalog_misses;
  observation.cross_job_hits = result.report.cross_job_hits;
  observation.cross_job_bytes_saved = result.report.cross_job_bytes_saved;
  observation.plan_cache_hit = result.plan_cache_hit;
  observation.reoptimized = result.reoptimized;
  metrics_.Record(observation);
  return result;
}

}  // namespace sc::service
