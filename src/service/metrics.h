#ifndef SC_SERVICE_METRICS_H_
#define SC_SERVICE_METRICS_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace sc::service {

/// Terminal disposition of one job. Replaces string matching on
/// report.error as the programmatic failure taxonomy: `kFailed` is a
/// genuine execution error, while the last three are service decisions
/// (caller cancel, deadline expiry, queue-wait shedding) that callers
/// routinely branch on.
enum class JobStatus {
  kOk = 0,
  kFailed = 1,
  kCancelled = 2,  // RefreshService::Cancel or token cancel
  kTimeout = 3,    // RefreshJobSpec::deadline_seconds expired
  kShed = 4,       // RefreshJobSpec::max_queue_wait_seconds expired queued
};

/// Stable lowercase label ("ok", "failed", "cancelled", "timeout",
/// "shed") used as the `status` label of sc_jobs_total.
const char* JobStatusName(JobStatus status);

/// One completed (or failed) job's observation, recorded by the service.
struct JobObservation {
  std::string tenant;
  int priority = 0;
  bool ok = false;
  /// Terminal disposition; ok == (status == JobStatus::kOk).
  JobStatus status = JobStatus::kFailed;
  double queue_wait_seconds = 0.0;
  double exec_seconds = 0.0;
  std::int64_t requested_bytes = 0;
  std::int64_t granted_bytes = 0;
  /// Bytes handed back to the BudgetBroker mid-run (grant renegotiation).
  std::int64_t returned_bytes = 0;
  std::int64_t catalog_hits = 0;
  std::int64_t catalog_misses = 0;
  /// Resolutions / node reuses served from the cross-job SharedCatalog
  /// (subset of catalog_hits) and the bytes they saved.
  std::int64_t cross_job_hits = 0;
  std::int64_t cross_job_bytes_saved = 0;
  bool plan_cache_hit = false;
  bool reoptimized = false;
};

/// Aggregated view for one tenant (or the whole service).
struct TenantMetrics {
  std::int64_t jobs_completed = 0;
  /// Every non-ok job (errors + cancelled + timeout + shed), preserving
  /// the pre-fault-tolerance meaning of "failed".
  std::int64_t jobs_failed = 0;
  /// Disposition breakdown of jobs_failed (disjoint subsets).
  std::int64_t jobs_cancelled = 0;
  std::int64_t jobs_timeout = 0;
  std::int64_t jobs_shed = 0;
  double total_queue_wait_seconds = 0.0;
  double total_exec_seconds = 0.0;
  std::int64_t bytes_requested = 0;
  std::int64_t bytes_granted = 0;
  /// Bytes handed back mid-run via BudgetBroker::ReturnUnused.
  std::int64_t bytes_returned = 0;
  std::int64_t catalog_hits = 0;
  std::int64_t catalog_misses = 0;
  /// Cross-job sharing gauges: resolutions served from another job's
  /// resident outputs, and the disk/recompute bytes that saved.
  std::int64_t cross_job_hits = 0;
  std::int64_t cross_job_bytes_saved = 0;
  std::int64_t plan_cache_hits = 0;
  std::int64_t reoptimizations = 0;
  double p50_latency_seconds = 0.0;  // latency = queue wait + execution
  double p99_latency_seconds = 0.0;

  std::int64_t jobs_total() const { return jobs_completed + jobs_failed; }
  double mean_queue_wait_seconds() const {
    return jobs_total() == 0 ? 0.0
                             : total_queue_wait_seconds / jobs_total();
  }
  double catalog_hit_rate() const {
    const std::int64_t total = catalog_hits + catalog_misses;
    return total == 0 ? 0.0 : static_cast<double>(catalog_hits) / total;
  }
  /// Fraction of input resolutions served cross-tenant from the shared
  /// layer (0 when the service resolved nothing).
  double cross_job_hit_rate() const {
    const std::int64_t total = catalog_hits + catalog_misses;
    return total == 0 ? 0.0
                      : static_cast<double>(cross_job_hits) / total;
  }
  /// Jobs per second of busy execution time (not wall time).
  double throughput_jobs_per_second() const {
    return total_exec_seconds <= 0.0 ? 0.0
                                     : jobs_completed / total_exec_seconds;
  }
};

/// Queue-wait aggregates for one priority level (across tenants). Queue
/// wait covers admission queue *and* budget arbitration: the job waits
/// until it holds everything it needs to run.
struct PriorityWaitStats {
  std::int64_t jobs = 0;
  double total_wait_seconds = 0.0;
  double max_wait_seconds = 0.0;

  double mean_wait_seconds() const {
    return jobs == 0 ? 0.0 : total_wait_seconds / jobs;
  }
};

struct MetricsSnapshot {
  TenantMetrics aggregate;
  std::map<std::string, TenantMetrics> per_tenant;
  /// Completed-job queue waits by priority level.
  std::map<int, PriorityWaitStats> per_priority;
  /// Starvation gauge: the longest wait among jobs queued *right now*
  /// (submitted, not yet admitted to run). 0 when nothing is queued.
  double starvation_seconds = 0.0;
  std::size_t queued_jobs = 0;
};

/// Thread-safe metrics registry for the Refresh Service: per-tenant
/// throughput, queue wait, catalog hit rate, and latency percentiles.
/// Latency samples are retained per tenant (bounded by `max_samples`) so
/// percentiles are exact until the bound, then computed over the most
/// recent window.
class ServiceMetrics {
 public:
  explicit ServiceMetrics(std::size_t max_samples = 65536);

  void Record(const JobObservation& observation);

  /// Live-queue tracking behind the starvation gauge: the service reports
  /// a job when it enters the admission queue and again once it holds its
  /// budget grant (or fails). `enqueue_seconds` is a monotonic timestamp
  /// comparable to the gauge's own clock.
  void JobQueued(std::uint64_t job_id, int priority,
                 double enqueue_seconds);
  void JobDequeued(std::uint64_t job_id);
  /// Longest wait among currently queued jobs; 0 when none are queued.
  double StarvationSeconds() const;

  MetricsSnapshot Snapshot() const;

  /// Aligned per-tenant table (plus per-priority waits and the
  /// starvation gauge) for operators.
  std::string FormatTable() const;
  /// Machine-readable dump (stable key order) for benches and CI.
  std::string ToJson() const;

 private:
  struct TenantState {
    TenantMetrics totals;
    std::vector<double> latencies;  // ring buffer once max_samples reached
    std::size_t next_slot = 0;
  };
  struct QueuedJob {
    int priority = 0;
    double enqueue_seconds = 0.0;
  };

  static double Percentile(const std::vector<double>& sorted, double q);
  TenantMetrics Finalize(const TenantState& state) const;
  double StarvationSecondsLocked() const;

  const std::size_t max_samples_;
  mutable std::mutex mutex_;
  std::map<std::string, TenantState> tenants_;
  std::map<int, PriorityWaitStats> priority_waits_;
  std::map<std::uint64_t, QueuedJob> queued_;
};

}  // namespace sc::service

#endif  // SC_SERVICE_METRICS_H_
