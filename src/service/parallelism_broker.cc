#include "service/parallelism_broker.h"

#include <algorithm>

namespace sc::service {

ParallelismBroker::ParallelismBroker(int total_threads,
                                     int max_lanes_per_job)
    : total_threads_(std::max(1, total_threads)),
      max_lanes_(std::clamp(max_lanes_per_job, 1, total_threads_)) {}

ParallelismSplit ParallelismBroker::Split(int total_threads,
                                          int max_lanes_per_job) {
  const int total = std::max(1, total_threads);
  ParallelismSplit split;
  split.lanes_per_job = std::clamp(max_lanes_per_job, 1, total);
  split.workers = std::max(1, total / split.lanes_per_job);
  return split;
}

int ParallelismBroker::AcquireLanes(int preferred) {
  std::lock_guard<std::mutex> lock(mutex_);
  const int free = total_threads_ - in_use_;
  const int granted =
      std::clamp(std::min(free, preferred), 1, max_lanes_);
  in_use_ += granted;
  return granted;
}

void ParallelismBroker::ReleaseLanes(int lanes) {
  std::lock_guard<std::mutex> lock(mutex_);
  in_use_ -= std::max(0, lanes);
  if (in_use_ < 0) in_use_ = 0;
}

int ParallelismBroker::lanes_in_use() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return in_use_;
}

}  // namespace sc::service
