#include "service/plan_cache.h"

#include "common/fnv.h"

namespace sc::service {

std::uint64_t FingerprintGraph(const graph::Graph& g) {
  std::uint64_t h = kFnvOffset;
  FnvMixInt(&h, g.num_nodes());
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    const graph::NodeInfo& info = g.node(v);
    FnvMixString(&h, info.name);
    FnvMixInt(&h, info.size_bytes);
    FnvMixDouble(&h, info.speedup_score);
    FnvMixDouble(&h, info.compute_seconds);
    FnvMixInt(&h, info.base_input_bytes);
    FnvMixDouble(&h, info.file_count);
    for (graph::NodeId child : g.children(v)) {
      FnvMixInt(&h, child);
    }
    FnvMixInt(&h, -1);  // edge-list terminator
  }
  return h;
}

PlanCache::PlanCache(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

std::optional<CachedPlan> PlanCache::Lookup(std::uint64_t fingerprint,
                                            std::int64_t budget) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(Key{fingerprint, budget});
  if (it == index_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second);  // mark most recently used
  return it->second->cached;
}

void PlanCache::Insert(std::uint64_t fingerprint, std::int64_t budget,
                       opt::Plan plan, opt::StageDecomposition stages) {
  std::lock_guard<std::mutex> lock(mutex_);
  const Key key{fingerprint, budget};
  CachedPlan cached{std::move(plan), std::move(stages)};
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->cached = std::move(cached);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (lru_.size() >= capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++stats_.evictions;
  }
  lru_.push_front(Entry{key, std::move(cached)});
  index_[key] = lru_.begin();
  ++stats_.insertions;
}

PlanCacheStats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  lru_.clear();
  index_.clear();
}

}  // namespace sc::service
