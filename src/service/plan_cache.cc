#include "service/plan_cache.h"

#include <cstring>

namespace sc::service {

namespace {

// FNV-1a: stable across processes, unlike std::hash.
constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void HashBytes(std::uint64_t* h, const void* data, std::size_t len) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    *h ^= p[i];
    *h *= kFnvPrime;
  }
}

void HashInt(std::uint64_t* h, std::int64_t value) {
  HashBytes(h, &value, sizeof(value));
}

void HashDouble(std::uint64_t* h, double value) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  HashBytes(h, &bits, sizeof(bits));
}

void HashString(std::uint64_t* h, const std::string& s) {
  HashInt(h, static_cast<std::int64_t>(s.size()));
  HashBytes(h, s.data(), s.size());
}

}  // namespace

std::uint64_t FingerprintGraph(const graph::Graph& g) {
  std::uint64_t h = kFnvOffset;
  HashInt(&h, g.num_nodes());
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    const graph::NodeInfo& info = g.node(v);
    HashString(&h, info.name);
    HashInt(&h, info.size_bytes);
    HashDouble(&h, info.speedup_score);
    HashDouble(&h, info.compute_seconds);
    HashInt(&h, info.base_input_bytes);
    HashDouble(&h, info.file_count);
    for (graph::NodeId child : g.children(v)) {
      HashInt(&h, child);
    }
    HashInt(&h, -1);  // edge-list terminator
  }
  return h;
}

PlanCache::PlanCache(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

std::optional<CachedPlan> PlanCache::Lookup(std::uint64_t fingerprint,
                                            std::int64_t budget) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(Key{fingerprint, budget});
  if (it == index_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second);  // mark most recently used
  return it->second->cached;
}

void PlanCache::Insert(std::uint64_t fingerprint, std::int64_t budget,
                       opt::Plan plan, opt::StageDecomposition stages) {
  std::lock_guard<std::mutex> lock(mutex_);
  const Key key{fingerprint, budget};
  CachedPlan cached{std::move(plan), std::move(stages)};
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->cached = std::move(cached);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (lru_.size() >= capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++stats_.evictions;
  }
  lru_.push_front(Entry{key, std::move(cached)});
  index_[key] = lru_.begin();
  ++stats_.insertions;
}

PlanCacheStats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  lru_.clear();
  index_.clear();
}

}  // namespace sc::service
