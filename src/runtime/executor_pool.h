#ifndef SC_RUNTIME_EXECUTOR_POOL_H_
#define SC_RUNTIME_EXECUTOR_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sc::runtime {

/// Fixed-size worker pool backing the parallel runtime's execution lanes:
/// each submitted task is one DAG node execution; tasks are picked up FIFO
/// by whichever lane frees first. The pool is deliberately dumb — all
/// scheduling policy (readiness, dispatch order, budget backpressure)
/// lives in the Controller's run loop, so the same pool can be shared by
/// any run shape.
class ExecutorPool {
 public:
  explicit ExecutorPool(int threads);
  /// Runs every queued task to completion, then joins the lanes.
  ~ExecutorPool();

  ExecutorPool(const ExecutorPool&) = delete;
  ExecutorPool& operator=(const ExecutorPool&) = delete;

  /// Queues `task` for execution on some lane. Tasks must not throw —
  /// callers wrap their work and route errors through their own state.
  void Submit(std::function<void()> task);

  int size() const { return static_cast<int>(lanes_.size()); }

 private:
  void Loop();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> lanes_;
};

}  // namespace sc::runtime

#endif  // SC_RUNTIME_EXECUTOR_POOL_H_
