#ifndef SC_RUNTIME_CONTROLLER_H_
#define SC_RUNTIME_CONTROLLER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cost/cost_model.h"
#include "fault/fault.h"
#include "obs/trace.h"
#include "opt/types.h"
#include "runtime/cancel.h"
#include "storage/memory_catalog.h"
#include "storage/throttled_disk.h"
#include "workload/workloads.h"

namespace sc::runtime {

class LanePool;

/// Background materialization worker (paper §III-C): a single writer
/// channel that persists Memory Catalog tables to external storage while
/// the DBMS executes downstream nodes. FIFO, mirroring one storage write
/// channel.
///
/// Two execution modes share the same queue and semantics:
/// - Owned thread (pool == nullptr): the pre-pool behaviour — one writer
///   thread per Materializer, constructed eagerly. Standalone fallback.
/// - Pooled (pool != nullptr): writes drain on the service-wide LanePool
///   via a single self-requeueing drain task, so steady-state jobs spawn
///   no per-run writer thread (the last per-run thread construction).
///   At most one drain task is ever in flight, which preserves the
///   strict single-writer FIFO ordering per file; spans still land on
///   this materializer's own "materializer-<k>" track regardless of
///   which lane executes the drain.
class Materializer {
 public:
  /// `trace` (optional, not owned) receives a "materialize" span per
  /// completed write on this materializer's track ("materializer-<k>").
  /// `pool` (optional, not owned; must outlive this object) switches to
  /// pooled mode.
  explicit Materializer(storage::ThrottledDisk* disk,
                        obs::TraceRecorder* trace = nullptr,
                        LanePool* pool = nullptr);
  ~Materializer();

  Materializer(const Materializer&) = delete;
  Materializer& operator=(const Materializer&) = delete;

  /// Queues `table` for persistence under `name`; the returned future
  /// resolves when the write has completed (or throws on failure).
  std::shared_future<void> Enqueue(std::string name,
                                   engine::TablePtr table);

  /// Blocks until every queued write has finished.
  void Drain();

  /// Retry policy for failed writes: transient failures (fault::
  /// IsTransient) are retried up to `retry_limit` times with capped
  /// exponential backoff before the task's future fails. `cancel`
  /// (optional, not owned) suppresses retries once the owning job is
  /// cancelled; `retry_counter` (optional, not owned) accumulates
  /// attempts consumed. Call before the first Enqueue.
  void SetRetryPolicy(int retry_limit, double retry_backoff_ms,
                      const CancelToken* cancel,
                      std::atomic<std::int64_t>* retry_counter = nullptr);

  /// Hook invoked (from the writer thread/lane) with the table name when
  /// a write permanently fails, *before* the task's future is failed —
  /// the caller's chance to quarantine optimistic publishes of that
  /// output. Call before the first Enqueue. Must not throw.
  void SetWriteFailureHook(std::function<void(const std::string&)> hook);

 private:
  struct Task {
    std::string name;
    engine::TablePtr table;
    std::promise<void> done;
  };

  void Loop();
  /// Pooled-mode drain body: writes queued tasks FIFO until the queue is
  /// empty, then retires (Enqueue schedules a fresh one as needed).
  void DrainOnPool();
  /// Executes one write and settles its promise (both modes).
  void WriteOne(Task task);

  storage::ThrottledDisk* disk_;
  obs::TraceRecorder* trace_;  // not owned; may be null
  LanePool* pool_;             // not owned; null = owned-thread mode
  std::string track_;          // "materializer-<k>" trace track
  int retry_limit_ = 0;
  double retry_backoff_ms_ = 1.0;
  const CancelToken* cancel_ = nullptr;  // not owned; may be null
  std::atomic<std::int64_t>* retry_counter_ = nullptr;  // not owned
  std::function<void(const std::string&)> write_failure_hook_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable drained_cv_;
  std::deque<Task> queue_;
  bool busy_ = false;
  bool stopping_ = false;
  /// Pooled mode: a drain task has been submitted and not yet retired.
  bool pool_task_active_ = false;
  std::thread worker_;
};

struct ControllerOptions {
  /// Memory Catalog size in bytes.
  std::int64_t budget = 64LL * 1024 * 1024;
  /// If false, flagged outputs are written synchronously after creation
  /// (ablation; true reproduces S/C).
  bool background_materialize = true;
  /// Maximum number of DAG nodes of one run executing concurrently
  /// (intra-job lanes). 1 — the default — is the paper's sequential
  /// Controller and is guaranteed to produce the same node stats, catalog
  /// hit/miss counts, and peak memory as the pre-parallel execution loop.
  /// Values > 1 route the run through the stage-scheduled runtime:
  /// independent nodes execute on LanePool lanes while flagged outputs
  /// are still published to the Memory Catalog in optimized order.
  int max_parallel_nodes = 1;
  /// Routes 1-lane runs through the stage-scheduled runtime instead of
  /// the classic sequential loop. Semantics are identical either way;
  /// the knob exists so tests can assert that equivalence.
  bool force_stage_runtime = false;
  /// Inline small-node dispatch threshold (seconds). In parallel runs,
  /// a ready node whose estimated wall cost (opt::EstimateNodeSeconds:
  /// profiled compute plus modeled I/O under throttled storage) is at or
  /// below this threshold executes on the coordinator thread itself
  /// instead of being handed to a LanePool lane — for sub-millisecond
  /// nodes the cross-thread handoff and wakeup cost more than the node,
  /// which is what made lanes *lose* to the sequential loop on cheap
  /// workloads. Nodes that were never profiled have unknown cost and
  /// always go to a lane. <= 0 disables inlining. Inlined executions are
  /// reported in RunReport::inlined_nodes; results, publish order, and
  /// catalog behaviour are unaffected (stage_runtime_test asserts the
  /// sequential-equivalence contract with the threshold active).
  ///
  /// The 1 ms default is ~10x the measured lane handoff + wakeup cost:
  /// vectorized operator nodes at bench scale profile at 5-200 us (pure
  /// dispatch overhead if offloaded), while I/O-bound nodes on throttled
  /// storage estimate at several ms and keep their lane parallelism.
  double inline_node_cost_seconds = 0.001;
  /// Service-wide executor pool the run borrows its execution lanes from
  /// (not owned; must outlive the Controller's runs). When null, parallel
  /// runs fall back to an owned pool constructed per run — the standalone
  /// Controller behaviour. The RefreshService always supplies its shared
  /// pool so steady-state jobs pay zero thread construction.
  LanePool* lane_pool = nullptr;
  /// Morsel-driven intra-operator parallelism (Leis et al., SIGMOD
  /// 2014): a node whose estimated wall cost (opt::EstimateNodeSeconds,
  /// the same model behind inline dispatch) exceeds this target has its
  /// hash-join and aggregation interiors split into up to
  /// opt::MorselBudget(est, target, pool capacity) morsels executed by
  /// idle lanes of the run's LanePool — so one giant node no longer
  /// pins job latency to a single lane. Results are bit-identical to
  /// single-morsel execution (engine_morsel_test pins this against
  /// scalar_reference), the node still completes and publishes as one
  /// unit, and unprofiled nodes (est = +inf) get the full budget with
  /// the per-operator row floor below making the runtime call. <= 0
  /// disables interior fan-out entirely (the exact pre-morsel code
  /// path). Requires a lane_pool (or the parallel runtime's owned
  /// fallback pool); sequential runs without any pool stay sequential.
  double morsel_target_seconds = 0.005;
  /// Row floor per morsel: operators fan out only ranges of at least
  /// this many rows (a smaller morsel pays more in dispatch than it
  /// saves), regardless of the cost-model budget.
  std::int64_t morsel_min_rows = 8192;
  /// Cap on a node's interior fan-out. 0 (default) caps at the machine's
  /// hardware concurrency: morsel work is pure compute, so extra morsels
  /// beyond physical cores only add dispatch cost even when the LanePool
  /// is deliberately oversubscribed for I/O-bound nodes (on a 1-core CI
  /// runner this disables fan-out outright). An explicit value overrides
  /// the hardware cap — tests pin it for machine-independent behaviour.
  int morsel_max_lanes = 0;
  /// Compressed columnar residency: node outputs have their plain string
  /// columns dictionary-encoded (engine::Column::DictionaryEncode)
  /// before they enter residency accounting, whenever the encoding is
  /// actually smaller (all-unique strings stay plain). Representation is
  /// invisible to consumers — Table::operator== and the SCT1 disk format
  /// are representation-agnostic, and every operator accepts encoded
  /// inputs — but the smaller ByteSize is what the Memory Catalog, the
  /// cross-job SharedCatalog, and the profiled NodeScale (hence the
  /// knapsack optimizer) see, so string-heavy workloads pack more MVs
  /// per byte of budget. Off reproduces the pre-compression footprints.
  bool compress_residency = true;
  /// Applies the opt::WidenStagesPrefix post-pass to the plan before
  /// executing: reorders the total order stage-major among
  /// budget-feasible leading stages so early antichains are as wide as
  /// possible. Off by default; the RefreshService instead widens at
  /// optimization time so cached plans are widened once.
  bool widen_stages = false;
  /// Cross-job shared residency layer. When set, the run's Memory
  /// Catalog becomes a per-job view over this content-keyed
  /// SharedCatalog: node names are bound to content fingerprints
  /// (graph::FingerprintNodes), flagged outputs are published under
  /// their fingerprint as the relaxed-publish replay enters them into
  /// the catalog (unflagged outputs at their publish slot), inputs
  /// resident from other jobs are pinned at dispatch and served at
  /// memory speed, and a node whose own output is already resident is
  /// reused outright instead of recomputed. Not owned; must outlive the
  /// runs. Do not combine with ProfileAndAnnotate — reused nodes report
  /// zero compute, which would corrupt the profile.
  storage::SharedCatalog* shared_catalog = nullptr;
  /// Salt mixed into the content fingerprints (a data epoch): bump it to
  /// invalidate every cross-job match, e.g. after base tables change.
  std::uint64_t shared_epoch = 0;
  /// Precomputed graph::FingerprintNodes(graph, shared_epoch) for the
  /// workload about to run (the RefreshService computes them once for
  /// its residency snapshot). Not owned; must outlive the run and match
  /// the graph — mismatches are ignored and recomputed.
  const std::vector<std::uint64_t>* node_fingerprints = nullptr;
  /// Observes cross-job pin lifecycle events (content key, bytes,
  /// pinned). The RefreshService charges pinned shared bytes to the
  /// reading tenant's quota through this hook.
  storage::MemoryCatalog::SharedPinListener shared_pin_listener;
  /// Observability trace recorder. When set (and enabled), the run emits
  /// spans at every execution boundary — per-node execute (on the lane
  /// track that ran it, with read/compute/write args), the in-plan-order
  /// publish replay, and Materializer writes — rendering in
  /// chrome://tracing as a per-lane occupancy timeline. Not owned; must
  /// outlive the runs. Null (the default) keeps the hot path span-free.
  obs::TraceRecorder* trace = nullptr;
  /// Job id stamped into every span this run emits (the "job" arg), so a
  /// multi-job service trace can be sliced per job. 0 for standalone
  /// runs.
  std::uint64_t trace_job_id = 0;
  /// Cooperative cancellation token (not owned; must outlive the run).
  /// When set, the run polls it at every stage-dispatch, node-execute,
  /// morsel-claim, and Materializer-retry boundary and unwinds with
  /// RunReport::cancelled within one such boundary of the token
  /// latching. Null (the default) keeps the hot path probe-free.
  const CancelToken* cancel = nullptr;
  /// Seeded fault injector probed at Site::kNodeExecute before each node
  /// attempt (disk sites are wired on the ThrottledDisk itself). Not
  /// owned; nullptr disables.
  fault::FaultInjector* faults = nullptr;
  /// Per-node retries for transient-classified failures (injected
  /// transient faults, or any exception deriving fault::TransientTag).
  /// 0 — the default — preserves strict fail-fast semantics: any node or
  /// materialization failure aborts the run on first occurrence.
  int retry_limit = 0;
  /// Base backoff between retry attempts, doubling per attempt and
  /// capped at 64x (so misconfigured limits cannot sleep a lane for
  /// minutes). Cancellation interrupts the backoff.
  double retry_backoff_ms = 1.0;
};

/// Per-node statistics from a real refresh run.
struct NodeRunStats {
  std::string name;
  double read_seconds = 0.0;     // time inside disk reads
  double compute_seconds = 0.0;  // plan execution minus reads
  double write_seconds = 0.0;    // blocking write time
  bool output_in_memory = false;
  std::int64_t output_bytes = 0;
  std::uint64_t output_rows = 0;
  /// Antichain stage of the node under the run's order (0-based).
  std::int32_t stage = 0;
  /// The node was not executed: its output was already resident in the
  /// cross-job SharedCatalog and was reused at memory speed.
  bool reused_cross_job = false;
  /// Transient-failure retries this node consumed before succeeding.
  std::int32_t retries = 0;
};

struct RunReport {
  bool ok = false;
  std::string error;
  /// The run unwound cooperatively because its cancel token latched
  /// (explicit cancel or deadline — see cancel_reason). Cleanup is
  /// complete either way: budget-visible catalog state, shared pins, and
  /// reservations are all released by the time the report returns.
  bool cancelled = false;
  CancelReason cancel_reason = CancelReason::kNone;
  /// Transient-failure retries consumed across all nodes and
  /// materializations (0 in fail-fast mode).
  std::int64_t node_retries = 0;
  double wall_seconds = 0.0;
  std::int64_t peak_memory = 0;
  /// Memory Catalog budget this run actually executed under (equals the
  /// controller's configured budget unless an external grant overrode it).
  std::int64_t budget = 0;
  /// Input resolutions served from the Memory Catalog vs. falling through
  /// to external storage.
  std::int64_t catalog_hits = 0;
  std::int64_t catalog_misses = 0;
  /// Execution lanes the run actually used (min of max_parallel_nodes and
  /// the widest antichain; 1 for sequential runs).
  int parallel_lanes = 1;
  /// Antichain stages of the executed order.
  std::int32_t num_stages = 0;
  /// Dispatch attempts denied by Memory-Catalog reservation backpressure
  /// (0 for sequential runs): how often concurrent lanes were held back
  /// to keep in-flight flagged outputs within the budget.
  std::int64_t reserve_denials = 0;
  /// Nodes executed inline on the coordinator thread instead of a lane
  /// (below-threshold estimated cost; 0 for sequential runs, which have
  /// no handoff to skip).
  std::int64_t inlined_nodes = 0;
  /// Interior morsel tasks executed by fanned-out operators across the
  /// run (0 when every node ran single-morsel). Counts all participants
  /// of each fan-out, caller and helper lanes alike.
  std::int64_t morsel_tasks = 0;
  /// Resolutions and whole-node reuses served from the cross-job
  /// SharedCatalog (0 without one; subset of catalog_hits).
  std::int64_t cross_job_hits = 0;
  /// Bytes those cross-job hits served in place of disk reads or
  /// recomputation.
  std::int64_t cross_job_bytes_saved = 0;
  std::vector<NodeRunStats> nodes;  // in publish (= plan) order

  double TotalReadSeconds() const;
  double TotalComputeSeconds() const;
  double TotalWriteSeconds() const;
  /// Fraction of input resolutions served at memory speed (0 when the run
  /// resolved no inputs).
  double CatalogHitRate() const;
};

/// The S/C Controller (paper §III-B): executes an MV refresh run against
/// the engine + storage substrate following the Optimizer's plan. All MVs
/// are materialized to external storage exactly as defined; flagged nodes
/// are additionally kept in the Memory Catalog until their last consumer
/// finishes, with their disk write running in the background.
///
/// With max_parallel_nodes > 1 the run executes on the stage-scheduled
/// parallel runtime: a StageScheduler derives antichain stages from the
/// optimizer's total order and dispatches ready nodes (all DAG parents
/// available) to a LanePool (the service's shared pool, or an owned
/// fallback), in order-position priority. Flagged outputs are still
/// *published* to the Memory Catalog strictly in the optimized order —
/// the publish step replays the sequential Put / lazy-release sequence,
/// so the catalog's budget behaviour (and the paper's residency
/// semantics) are independent of the lane count; the catalog's
/// reservation API additionally backpressures dispatch so concurrently
/// executing flagged nodes cannot jointly overshoot the budget while
/// their outputs are in flight.
///
/// Availability is decoupled from that residency replay (the relaxed
/// publish protocol): an unflagged node's children become dispatchable
/// the moment its external write completes, and dispatch itself happens
/// from lane-completion callbacks, so the in-order replay — which can
/// block on materializations during lazy release — never stalls
/// execution of independent work. The Materializer keeps its
/// single-writer channel regardless of lanes.
class Controller {
 public:
  Controller(storage::ThrottledDisk* disk, ControllerOptions options);

  /// Persists base tables to external storage (ingestion step).
  void LoadBaseTables(
      const std::map<std::string, engine::TablePtr>& tables);

  /// Executes the workload under `plan`. Returns a failed report (ok ==
  /// false) if the plan is invalid or the Memory Catalog budget would be
  /// violated.
  RunReport Run(const workload::MvWorkload& wl, const opt::Plan& plan);

  /// Like Run(), but executes against an externally-granted Memory Catalog
  /// budget instead of the configured one. This is the entry point for the
  /// Refresh Service: a BudgetBroker arbitrates the global catalog across
  /// concurrent jobs and hands each run its funded slice. `stages` may
  /// supply a precomputed DecomposeStages(plan.order) (the service caches
  /// it next to the plan); when null — or when it does not match the plan
  /// — the decomposition is computed here.
  RunReport RunWithBudget(const workload::MvWorkload& wl,
                          const opt::Plan& plan, std::int64_t budget,
                          const opt::StageDecomposition* stages = nullptr);

  /// Executes with the no-optimization baseline plan (topological order,
  /// nothing flagged).
  RunReport RunUnoptimized(const workload::MvWorkload& wl);

  /// Runs unoptimized while recording execution metadata (§III-A) into the
  /// workload's graph: output sizes, compute seconds, base input bytes,
  /// and speedup scores derived from the disk profile. This is the
  /// "observed performance metrics from past runs" the Optimizer consumes.
  RunReport ProfileAndAnnotate(workload::MvWorkload* wl);

 private:
  storage::ThrottledDisk* disk_;
  ControllerOptions options_;
};

}  // namespace sc::runtime

#endif  // SC_RUNTIME_CONTROLLER_H_
