#include "runtime/cancel.h"

#include "common/clock.h"

namespace sc::runtime {

bool CancelToken::cancelled() const {
  if (reason_.load(std::memory_order_acquire) != 0) return true;
  const double deadline = deadline_.load(std::memory_order_acquire);
  if (deadline > 0.0 && MonotonicSeconds() >= deadline) {
    int expected = 0;
    reason_.compare_exchange_strong(
        expected, static_cast<int>(CancelReason::kDeadline),
        std::memory_order_acq_rel);
    return true;
  }
  return false;
}

}  // namespace sc::runtime
