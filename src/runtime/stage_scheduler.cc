#include "runtime/stage_scheduler.h"

namespace sc::runtime {

StageScheduler::StageScheduler(const graph::Graph& g,
                               const graph::Order& order,
                               const opt::StageDecomposition& stages)
    : g_(g), order_(order), stages_(stages) {
  const std::int32_t n = g.num_nodes();
  waiting_parents_.resize(static_cast<std::size_t>(n));
  for (graph::NodeId v = 0; v < n; ++v) {
    waiting_parents_[static_cast<std::size_t>(v)] =
        static_cast<std::int32_t>(g.parents(v).size());
    if (waiting_parents_[static_cast<std::size_t>(v)] == 0) {
      ready_.push(order.position[static_cast<std::size_t>(v)]);
    }
  }
}

graph::NodeId StageScheduler::PeekReady() const {
  if (ready_.empty()) return graph::kInvalidNode;
  return order_.sequence[static_cast<std::size_t>(ready_.top())];
}

graph::NodeId StageScheduler::PopReady() {
  const graph::NodeId v = PeekReady();
  if (v != graph::kInvalidNode) {
    ready_.pop();
    ++dispatched_;
  }
  return v;
}

void StageScheduler::MarkAvailable(graph::NodeId v) {
  for (const graph::NodeId c : g_.children(v)) {
    if (--waiting_parents_[static_cast<std::size_t>(c)] == 0) {
      ready_.push(order_.position[static_cast<std::size_t>(c)]);
    }
  }
}

}  // namespace sc::runtime
