#ifndef SC_RUNTIME_LANE_POOL_H_
#define SC_RUNTIME_LANE_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <mutex>
#include <thread>

namespace sc::runtime {

struct LanePoolOptions {
  /// Maximum number of lane threads alive at once. Submissions beyond the
  /// capacity queue FIFO until a lane frees.
  int capacity = 1;
  /// A lane that sits idle this long exits; the pool respawns lanes on
  /// demand. <= 0 keeps idle lanes alive until destruction.
  double idle_shutdown_seconds = 30.0;
};

/// Service-wide, work-queue-backed executor pool behind the parallel
/// runtime's execution lanes. Unlike the per-run pool it replaces, a
/// LanePool is constructed once (by the RefreshService, or standalone
/// Controller runs as an owned fallback) and reused by every job: lanes
/// spawn lazily on demand, stay alive between jobs, and only exit after
/// `idle_shutdown_seconds` without work — so steady-state refresh traffic
/// pays zero thread construction per job.
///
/// The pool is deliberately dumb: each task is one DAG-node execution,
/// picked up FIFO by whichever lane frees first. All scheduling policy
/// (readiness, dispatch order, budget backpressure, per-job lane caps)
/// lives in the Controller's run loop, so one pool serves any number of
/// concurrently running jobs.
class LanePool {
 public:
  explicit LanePool(int capacity)
      : LanePool(LanePoolOptions{capacity, 30.0}) {}
  explicit LanePool(LanePoolOptions options);
  /// Runs every queued task to completion, then joins the lanes.
  ~LanePool();

  LanePool(const LanePool&) = delete;
  LanePool& operator=(const LanePool&) = delete;

  /// Queues `task` for execution on some lane, spawning one if none is
  /// idle and the pool is below capacity. Callers normally wrap their
  /// work and route errors through their own state; an exception that
  /// does escape a task is swallowed by the lane (counted in
  /// `tasks_failed()`) instead of taking the process down, because one
  /// job's bug must never std::terminate a pool shared by every tenant.
  void Submit(std::function<void()> task);

  int capacity() const { return options_.capacity; }
  /// Cumulative number of lane threads ever started — the thread-churn
  /// metric: steady-state reuse keeps this flat across jobs.
  std::int64_t threads_started() const;
  /// Lanes currently alive (idle or running a task).
  int live_lanes() const;
  /// Lanes currently parked waiting for work.
  int idle_lanes() const;
  std::int64_t tasks_completed() const;
  /// Tasks whose invocation let an exception escape. Always a bug in the
  /// submitter (the runtime routes errors through run state), surfaced
  /// as a counter so monitoring can alarm on it.
  std::int64_t tasks_failed() const {
    return tasks_failed_.load(std::memory_order_relaxed);
  }
  /// Cumulative seconds lanes spent executing tasks; together with a wall
  /// clock and the capacity this yields the lane-idle fraction. Lanes
  /// accumulate into one atomic the moment their task returns — before
  /// re-taking the pool lock — so concurrent completions can never lose
  /// an increment and monitoring reads never contend (the PR-6
  /// busy-seconds race fix; lane_pool_test asserts monotonicity under
  /// concurrent readers and TSAN covers the accumulation).
  double busy_seconds() const {
    return static_cast<double>(
               busy_nanos_.load(std::memory_order_relaxed)) /
           1e9;
  }

 private:
  struct Lane {
    std::thread thread;
    bool exited = false;
  };

  void Loop(std::list<Lane>::iterator self, int lane_index);
  /// Joins and erases lanes that exited (idle shutdown). Requires mutex_.
  void ReapLocked();

  const LanePoolOptions options_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::list<Lane> lanes_;
  bool stopping_ = false;
  int live_ = 0;
  int idle_ = 0;
  std::int64_t threads_started_ = 0;
  std::int64_t tasks_completed_ = 0;
  std::atomic<std::int64_t> busy_nanos_{0};
  std::atomic<std::int64_t> tasks_failed_{0};
};

/// The calling lane's pool-assigned index, or -1 off a lane thread. Lane
/// indices also name the thread's trace track ("lane-<n>"), which is
/// what renders the obs trace as a lane-occupancy timeline.
int CurrentLaneIndex();

}  // namespace sc::runtime

#endif  // SC_RUNTIME_LANE_POOL_H_
