#include "runtime/lane_pool.h"

#include <algorithm>
#include <chrono>
#include <string>

#include "common/clock.h"
#include "obs/trace.h"

namespace sc::runtime {

namespace {
thread_local int current_lane_index = -1;
}  // namespace

int CurrentLaneIndex() { return current_lane_index; }

LanePool::LanePool(LanePoolOptions options) : options_([&] {
  LanePoolOptions o = options;
  o.capacity = std::max(1, o.capacity);
  return o;
}()) {}

LanePool::~LanePool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  // Lanes drain the queue before exiting, so joining here preserves the
  // run-everything-then-stop contract of the per-run pool this replaces.
  for (Lane& lane : lanes_) {
    if (lane.thread.joinable()) lane.thread.join();
  }
}

void LanePool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
    ReapLocked();
    // Spawn when the backlog exceeds the lanes already waiting for it —
    // not merely when no lane is idle: under burst submission the idle
    // lane only absorbs one task, and the rest must not serialize behind
    // it while capacity sits unused.
    if (queue_.size() > static_cast<std::size_t>(idle_) &&
        live_ < options_.capacity && !stopping_) {
      lanes_.emplace_back();
      auto self = std::prev(lanes_.end());
      ++live_;
      const int lane_index = static_cast<int>(threads_started_++);
      self->thread =
          std::thread([this, self, lane_index] { Loop(self, lane_index); });
    }
  }
  cv_.notify_one();
}

void LanePool::ReapLocked() {
  for (auto it = lanes_.begin(); it != lanes_.end();) {
    if (it->exited) {
      if (it->thread.joinable()) it->thread.join();
      it = lanes_.erase(it);
    } else {
      ++it;
    }
  }
}

void LanePool::Loop(std::list<Lane>::iterator self, int lane_index) {
  // Lane identity for the observability layer: node spans emitted while
  // this lane executes land on its own trace track.
  current_lane_index = lane_index;
  obs::SetThreadTrack("lane-" + std::to_string(lane_index));
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    ++idle_;
    bool idle_timeout = false;
    while (queue_.empty() && !stopping_ && !idle_timeout) {
      if (options_.idle_shutdown_seconds > 0) {
        const auto wait = std::chrono::duration<double>(
            options_.idle_shutdown_seconds);
        if (cv_.wait_for(lock, wait) == std::cv_status::timeout) {
          idle_timeout = queue_.empty() && !stopping_;
        }
      } else {
        cv_.wait(lock);
      }
    }
    --idle_;
    if (queue_.empty()) break;  // stopping, or idled out with no work
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    lock.unlock();
    const double start = MonotonicSeconds();
    try {
      task();
    } catch (...) {
      // A lane is shared infrastructure: an exception escaping one job's
      // task must not std::terminate the whole service. Count it and keep
      // the lane alive; the submitter's own error plumbing (run-state
      // error strings, promises) is the intended reporting channel.
      tasks_failed_.fetch_add(1, std::memory_order_relaxed);
    }
    const double elapsed = MonotonicSeconds() - start;
    // Accumulate busy time lock-free, before re-taking the pool lock:
    // concurrent lane completions each fetch_add their own elapsed time,
    // so no increment can be lost and busy_seconds() readers (benches,
    // the metrics registry) never contend with the lanes.
    busy_nanos_.fetch_add(static_cast<std::int64_t>(elapsed * 1e9),
                          std::memory_order_relaxed);
    lock.lock();
    ++tasks_completed_;
  }
  --live_;
  // Mark for reaping (Submit joins exited lanes); the destructor joins
  // whatever is left, so the handle is always collected exactly once.
  self->exited = true;
}

std::int64_t LanePool::threads_started() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return threads_started_;
}

int LanePool::live_lanes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return live_;
}

int LanePool::idle_lanes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return idle_;
}

std::int64_t LanePool::tasks_completed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return tasks_completed_;
}

}  // namespace sc::runtime
