#include "runtime/morsel.h"

#include <condition_variable>
#include <exception>
#include <memory>
#include <mutex>
#include <utility>

#include "common/clock.h"
#include "common/str_util.h"
#include "runtime/lane_pool.h"

namespace sc::runtime {

LaneMorselRunner::LaneMorselRunner(LanePool* pool,
                                   obs::TraceRecorder* trace,
                                   std::uint64_t trace_job_id,
                                   std::string node_name,
                                   std::atomic<std::int64_t>* task_counter,
                                   const CancelToken* cancel)
    : pool_(pool),
      trace_(trace),
      trace_job_id_(trace_job_id),
      node_name_(std::move(node_name)),
      task_counter_(task_counter),
      cancel_(cancel) {}

int LaneMorselRunner::parallelism() const { return pool_->capacity(); }

namespace {

/// State shared between the caller and its helper tasks. Heap-allocated
/// (shared_ptr) so helpers that dequeue after Run() returned — possible
/// when the pool is busy — find only this, never the caller's dead
/// stack frame: they claim an index >= count and exit without touching
/// `fn`.
struct FanOutState {
  std::size_t count = 0;
  const std::function<void(std::size_t)>* fn = nullptr;
  const CancelToken* cancel = nullptr;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::mutex mutex;
  std::condition_variable cv;
  std::exception_ptr error;  // first failure; guarded by mutex

  /// Claims and runs morsels until none remain. Returns the number of
  /// morsels this participant executed. A latched cancel token turns
  /// every remaining claim into a skip: the morsel still counts toward
  /// `done` (so the caller's completion barrier terminates) but `fn` is
  /// not invoked, and CancelledError is recorded as the fan-out's error.
  std::size_t Drain() {
    std::size_t ran = 0;
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return ran;
      if (cancel != nullptr && cancel->cancelled()) {
        std::lock_guard<std::mutex> lock(mutex);
        if (!error) {
          error = std::make_exception_ptr(CancelledError(cancel->reason()));
        }
      } else {
        try {
          (*fn)(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(mutex);
          if (!error) error = std::current_exception();
        }
        ++ran;
      }
      if (done.fetch_add(1, std::memory_order_acq_rel) + 1 == count) {
        std::lock_guard<std::mutex> lock(mutex);
        cv.notify_all();
      }
    }
  }
};

}  // namespace

void LaneMorselRunner::Run(std::size_t count,
                           const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (count == 1) {
    fn(0);
    return;
  }
  if (task_counter_ != nullptr) {
    task_counter_->fetch_add(static_cast<std::int64_t>(count),
                             std::memory_order_relaxed);
  }
  auto state = std::make_shared<FanOutState>();
  state->count = count;
  state->fn = &fn;
  state->cancel = cancel_;

  // Helpers beyond the caller's own slot; extra submissions would only
  // churn the pool queue to find no work.
  const int cap = pool_->capacity();
  std::size_t helpers = cap > 1 ? static_cast<std::size_t>(cap - 1) : 0;
  if (helpers > count - 1) helpers = count - 1;
  obs::TraceRecorder* const trace =
      trace_ != nullptr && trace_->enabled() ? trace_ : nullptr;
  for (std::size_t h = 0; h < helpers; ++h) {
    pool_->Submit([state, trace, job = trace_job_id_,
                   name = node_name_] {
      const double start = trace != nullptr ? MonotonicSeconds() : 0.0;
      const std::size_t ran = state->Drain();
      if (trace != nullptr && ran > 0) {
        trace->Complete(
            "morsel", name, start, MonotonicSeconds() - start,
            StrFormat("\"job\":%llu,\"morsels\":%llu",
                      static_cast<unsigned long long>(job),
                      static_cast<unsigned long long>(ran)));
      }
    });
  }

  // The caller participates unconditionally: progress never depends on
  // a helper getting a lane.
  state->Drain();
  if (state->done.load(std::memory_order_acquire) != count) {
    std::unique_lock<std::mutex> lock(state->mutex);
    state->cv.wait(lock, [&] {
      return state->done.load(std::memory_order_acquire) == count;
    });
  }
  std::exception_ptr error;
  {
    std::lock_guard<std::mutex> lock(state->mutex);
    error = state->error;
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace sc::runtime
