#include "runtime/controller.h"

#include <algorithm>
#include <chrono>
#include <functional>
#include <optional>
#include <stdexcept>
#include <thread>
#include <utility>

#include "common/clock.h"
#include "common/str_util.h"
#include "cost/speedup.h"
#include "engine/executor.h"
#include "engine/morsel.h"
#include "graph/fingerprint.h"
#include "opt/memory_usage.h"
#include "opt/optimizer.h"
#include "opt/stages.h"
#include "runtime/lane_pool.h"
#include "runtime/morsel.h"
#include "runtime/stage_scheduler.h"
#include "storage/format.h"

namespace sc::runtime {

// ---------------------------------------------------------------------------
// Materializer
// ---------------------------------------------------------------------------

namespace {
/// Materializer channels get their own trace tracks so background
/// writes render as a separate timeline row next to the lanes. The
/// index is process-wide: runs overlap, and re-used indices would merge
/// rows.
std::string NextMaterializerTrack() {
  static std::atomic<int> next_writer_index{0};
  return "materializer-" +
         std::to_string(
             next_writer_index.fetch_add(1, std::memory_order_relaxed));
}

/// Capped exponential backoff between retry attempts: base * 2^attempt,
/// capped at 64x base. Sleeps in short slices so a cancel latching
/// mid-backoff aborts the wait within ~1 ms instead of serving it out.
void BackoffSleep(int attempt, double base_ms, const CancelToken* cancel) {
  if (base_ms <= 0.0) return;
  const double capped_ms =
      std::min(base_ms * static_cast<double>(1 << std::min(attempt, 6)),
               base_ms * 64.0);
  const double until = MonotonicSeconds() + capped_ms / 1000.0;
  for (;;) {
    if (cancel != nullptr && cancel->cancelled()) return;
    const double remaining = until - MonotonicSeconds();
    if (remaining <= 0.0) return;
    std::this_thread::sleep_for(
        std::chrono::duration<double>(std::min(remaining, 1e-3)));
  }
}
}  // namespace

Materializer::Materializer(storage::ThrottledDisk* disk,
                           obs::TraceRecorder* trace, LanePool* pool)
    : disk_(disk),
      trace_(trace),
      pool_(pool),
      track_(NextMaterializerTrack()) {
  if (pool_ == nullptr) {
    worker_ = std::thread([this] { Loop(); });
  }
}

Materializer::~Materializer() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    stopping_ = true;
    // Pooled mode: the in-flight drain task references `this` and
    // processes every queued write before retiring — wait it out (the
    // owned-thread mode equally drains its queue before Loop returns).
    drained_cv_.wait(lock, [this] { return !pool_task_active_; });
  }
  cv_.notify_all();
  if (worker_.joinable()) worker_.join();
}

std::shared_future<void> Materializer::Enqueue(std::string name,
                                               engine::TablePtr table) {
  Task task;
  task.name = std::move(name);
  task.table = std::move(table);
  std::shared_future<void> future = task.done.get_future().share();
  bool submit_drain = false;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
    if (pool_ != nullptr && !pool_task_active_) {
      // One drain task at a time: the single-writer FIFO channel.
      pool_task_active_ = true;
      submit_drain = true;
    }
  }
  if (submit_drain) {
    pool_->Submit([this] { DrainOnPool(); });
  }
  cv_.notify_one();
  return future;
}

void Materializer::Drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  drained_cv_.wait(lock, [this] { return queue_.empty() && !busy_; });
}

void Materializer::SetRetryPolicy(int retry_limit, double retry_backoff_ms,
                                  const CancelToken* cancel,
                                  std::atomic<std::int64_t>* retry_counter) {
  retry_limit_ = std::max(0, retry_limit);
  retry_backoff_ms_ = retry_backoff_ms;
  cancel_ = cancel;
  retry_counter_ = retry_counter;
}

void Materializer::SetWriteFailureHook(
    std::function<void(const std::string&)> hook) {
  write_failure_hook_ = std::move(hook);
}

void Materializer::WriteOne(Task task) {
  for (int attempt = 0;; ++attempt) {
    try {
      const double write_start = MonotonicSeconds();
      disk_->WriteTable(task.name, *task.table);
      if (trace_ != nullptr && trace_->enabled()) {
        // Explicit track: in pooled mode the executing thread is some
        // lane, but the write belongs on this materializer's timeline.
        trace_->CompleteOnTrack(
            track_, "materialize", task.name, write_start,
            MonotonicSeconds() - write_start,
            StrFormat("\"bytes\":%lld",
                      static_cast<long long>(task.table->ByteSize())));
      }
      task.done.set_value();
      return;
    } catch (const std::exception& e) {
      const bool cancelled = cancel_ != nullptr && cancel_->cancelled();
      if (attempt < retry_limit_ && fault::IsTransient(e) && !cancelled) {
        if (retry_counter_ != nullptr) {
          retry_counter_->fetch_add(1, std::memory_order_relaxed);
        }
        if (trace_ != nullptr && trace_->enabled()) {
          trace_->Instant("retry", task.name,
                          StrFormat("\"attempt\":%d,\"site\":\"write\"",
                                    attempt + 1));
        }
        BackoffSleep(attempt, retry_backoff_ms_, cancel_);
        continue;
      }
      // Permanent failure: give the owner its chance to quarantine the
      // optimistic shared publish of this output before any waiter of
      // the future observes the error.
      if (write_failure_hook_) write_failure_hook_(task.name);
      task.done.set_exception(std::current_exception());
      return;
    } catch (...) {
      if (write_failure_hook_) write_failure_hook_(task.name);
      task.done.set_exception(std::current_exception());
      return;
    }
  }
}

void Materializer::Loop() {
  obs::SetThreadTrack(track_);
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      busy_ = true;
    }
    WriteOne(std::move(task));
    {
      std::unique_lock<std::mutex> lock(mutex_);
      busy_ = false;
    }
    drained_cv_.notify_all();
  }
}

void Materializer::DrainOnPool() {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (queue_.empty()) {
        pool_task_active_ = false;
        drained_cv_.notify_all();
        return;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      busy_ = true;
    }
    WriteOne(std::move(task));
    {
      std::unique_lock<std::mutex> lock(mutex_);
      busy_ = false;
    }
    drained_cv_.notify_all();
  }
}

// ---------------------------------------------------------------------------
// RunReport
// ---------------------------------------------------------------------------

double RunReport::TotalReadSeconds() const {
  double total = 0;
  for (const auto& n : nodes) total += n.read_seconds;
  return total;
}

double RunReport::TotalComputeSeconds() const {
  double total = 0;
  for (const auto& n : nodes) total += n.compute_seconds;
  return total;
}

double RunReport::TotalWriteSeconds() const {
  double total = 0;
  for (const auto& n : nodes) total += n.write_seconds;
  return total;
}

double RunReport::CatalogHitRate() const {
  const std::int64_t total = catalog_hits + catalog_misses;
  return total == 0 ? 0.0 : static_cast<double>(catalog_hits) / total;
}

// ---------------------------------------------------------------------------
// Run state shared by the sequential loop and the parallel runtime
// ---------------------------------------------------------------------------

namespace {

/// Per-node wall-cost estimates over the run's storage device — the
/// shared model behind both inline dispatch and the interior morsel
/// budget. Unprofiled nodes estimate to +infinity.
std::vector<double> EstimateNodeCosts(const graph::Graph& g,
                                      const opt::FlagSet& flags,
                                      storage::ThrottledDisk* disk) {
  const storage::DiskProfile& dp = disk->profile();
  cost::DeviceProfile device;
  device.disk_read_bw = dp.read_bw;
  device.disk_write_bw = dp.write_bw;
  device.disk_latency = dp.latency;
  // ThrottledDisk emulates bandwidth + latency only; the cost model's
  // per-table open/commit overheads are not lane-occupancy time here.
  device.table_read_overhead = 0.0;
  device.table_write_overhead = 0.0;
  return opt::EstimateNodeSeconds(g, flags, cost::CostModel(device),
                                  dp.throttle);
}

/// Everything one refresh run owns. Both execution paths drive the same
/// ExecuteNode / PublishNode pair against this state, which is what makes
/// the 1-lane mode provably identical to the stage runtime at 1 lane.
struct RunState {
  RunState(const workload::MvWorkload& wl_in, const opt::Plan& plan_in,
           const opt::StageDecomposition& stages_in,
           const ControllerOptions& options_in,
           storage::ThrottledDisk* disk_in, std::int64_t budget)
      : wl(wl_in),
        plan(plan_in),
        stages(stages_in),
        options(options_in),
        disk(disk_in),
        catalog(budget, options_in.shared_catalog),
        materializer(disk_in, options_in.trace, options_in.lane_pool),
        morsel_pool(options_in.lane_pool) {
    const graph::Graph& g = wl.graph;
    materializer.SetRetryPolicy(options.retry_limit,
                                options.retry_backoff_ms, options.cancel,
                                &retries);
    // A write that permanently fails leaves the shared layer holding an
    // entry whose durability signal will never arrive: condemn it so no
    // later job skips its own write against a phantom file. (The members
    // outlive the materializer — it is declared after them.)
    materializer.SetWriteFailureHook([this](const std::string& name) {
      catalog.QuarantineShared(name);
    });
    if (options.morsel_target_seconds > 0) {
      node_est_seconds = EstimateNodeCosts(g, plan.flags, disk);
    }
    if (options.shared_catalog != nullptr) {
      // The catalog becomes the per-job view onto the cross-job layer:
      // every MV name is bound to its content fingerprint (reusing the
      // service's precomputed vector when provided). An empty
      // fingerprint set (non-DAG) simply leaves sharing off for the run.
      catalog.SetSharedPinListener(options.shared_pin_listener);
      const std::size_t n = static_cast<std::size_t>(g.num_nodes());
      std::vector<std::uint64_t> computed;
      const std::vector<std::uint64_t>* fps = options.node_fingerprints;
      if (fps == nullptr || fps->size() != n) {
        computed = graph::FingerprintNodes(g, options.shared_epoch);
        fps = &computed;
      }
      if (fps->size() == n) {
        for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
          catalog.BindSharedKey(g.node(v).name,
                                (*fps)[static_cast<std::size_t>(v)]);
        }
      }
    }
    pending_children.resize(static_cast<std::size_t>(g.num_nodes()));
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      pending_children[static_cast<std::size_t>(v)] =
          static_cast<std::int32_t>(g.children(v).size());
    }
  }

  const workload::MvWorkload& wl;
  const opt::Plan& plan;
  const opt::StageDecomposition& stages;
  const ControllerOptions& options;
  storage::ThrottledDisk* disk;
  storage::MemoryCatalog catalog;
  Materializer materializer;
  std::vector<std::int32_t> pending_children;
  std::map<std::string, std::shared_future<void>> in_flight;
  std::vector<graph::NodeId> releasable;
  /// Pool backing interior morsel fan-out (the service pool, or the
  /// parallel runtime's owned fallback wired in by RunStageParallel);
  /// null keeps every node single-morsel.
  LanePool* morsel_pool = nullptr;
  /// Per-node cost estimates feeding opt::MorselBudget; empty when
  /// morsel_target_seconds disables interior fan-out.
  std::vector<double> node_est_seconds;
  /// Morsel tasks executed across the run (RunReport::morsel_tasks).
  std::atomic<std::int64_t> morsel_tasks{0};
  /// Transient-failure retries consumed across all nodes and
  /// materializations (RunReport::node_retries).
  std::atomic<std::int64_t> retries{0};
};

struct NodeResult {
  NodeRunStats stats;
  engine::TablePtr output;
  /// For reused nodes: the shared entry was durable (on disk) at pin
  /// time, so this run may skip its own write.
  bool reused_durable = false;
};

/// Compressed columnar residency (ControllerOptions::compress_residency):
/// dictionary-encodes the plain string columns of a node output before
/// it enters residency accounting, keeping an encoding only when it is
/// actually smaller (an all-unique column stays plain). Downstream
/// consumers see the same logical values — operators, Table::operator==,
/// and the SCT1 disk format are representation-agnostic — while ByteSize
/// drops, so budgets, grants, and profiled output sizes all shrink.
engine::TablePtr CompressResidency(engine::TablePtr table) {
  bool candidate = false;
  for (std::size_t i = 0; i < table->num_columns(); ++i) {
    const engine::Column& col = table->column(i);
    if (col.type() == engine::DataType::kString &&
        !col.dictionary_encoded()) {
      candidate = true;
      break;
    }
  }
  if (!candidate) return table;
  auto compressed = std::make_shared<engine::Table>(*table);
  bool changed = false;
  for (std::size_t i = 0; i < compressed->num_columns(); ++i) {
    engine::Column& col = compressed->mutable_column(i);
    if (col.type() != engine::DataType::kString ||
        col.dictionary_encoded()) {
      continue;
    }
    engine::Column encoded = col.DictionaryEncode();
    if (encoded.ByteSize() < col.ByteSize()) {
      col = std::move(encoded);
      changed = true;
    }
  }
  return changed ? std::move(compressed) : std::move(table);
}

/// Executes node `v`'s plan, resolving inputs through the Memory Catalog
/// first and external storage second, and — for unflagged nodes — writes
/// the output to external storage. Safe to call from concurrent lanes:
/// it touches only the (thread-safe) catalog and disk plus local state.
/// `inline_exec` marks coordinator-thread inline dispatch in the span.
NodeResult ExecuteNode(RunState& s, graph::NodeId v,
                       bool inline_exec = false) {
  // Cancellation checkpoint: every node attempt — lane, inline, or
  // sequential — starts by probing the token, so a cancelled job stops
  // within one node boundary no matter which path executes it.
  if (s.options.cancel != nullptr) s.options.cancel->ThrowIfCancelled();
  const graph::Graph& g = s.wl.graph;
  NodeResult result;
  NodeRunStats& stats = result.stats;
  stats.name = g.node(v).name;
  stats.stage = s.stages.stage_of[v];

  // Span bracketing the whole node — reuse, resolve, execute, and the
  // unflagged synchronous write — on whichever track (lane, worker, or
  // coordinator thread) actually ran it. Emitted on every return path.
  obs::TraceRecorder* const trace = s.options.trace;
  const bool tracing = trace != nullptr && trace->enabled();
  const double node_start = tracing ? MonotonicSeconds() : 0.0;
  auto emit_node_span = [&](const NodeRunStats& st) {
    if (!tracing) return;
    trace->Complete(
        "node", st.name, node_start, MonotonicSeconds() - node_start,
        StrFormat("\"job\":%llu,\"stage\":%d,\"flagged\":%s,"
                  "\"read_s\":%.6f,\"compute_s\":%.6f,\"write_s\":%.6f,"
                  "\"bytes\":%lld,\"reused\":%s,\"inline\":%s",
                  static_cast<unsigned long long>(s.options.trace_job_id),
                  static_cast<int>(st.stage),
                  s.plan.flags[v] ? "true" : "false", st.read_seconds,
                  st.compute_seconds, st.write_seconds,
                  static_cast<long long>(st.output_bytes),
                  st.reused_cross_job ? "true" : "false",
                  inline_exec ? "true" : "false"));
  };

  // Cross-job reuse: another job refreshing the same content already has
  // this node's output resident in the shared layer. Pin it and skip the
  // recomputation — and usually the disk write too: the producing job
  // materializes the identical bytes under the same warehouse name. The
  // write is skipped only once the shared layer marks the entry durable
  // (the producer's write landed), so this run's durability never
  // depends on another tenant's in-flight write.
  bool reused_durable = false;
  std::int64_t reused_bytes = 0;
  if (engine::TablePtr reused = s.catalog.PinSharedOutput(
          stats.name, &reused_durable, &reused_bytes)) {
    stats.output_bytes = reused_bytes;  // accounted size; no table walk
    stats.output_rows = reused->num_rows();
    stats.reused_cross_job = true;
    result.reused_durable = reused_durable;
    if (!s.plan.flags[v] && !reused_durable) {
      const double w0 = MonotonicSeconds();
      s.disk->WriteTable(stats.name, *reused);
      stats.write_seconds = MonotonicSeconds() - w0;
      // Upgrade the entry so later reusers skip this redundant write.
      s.catalog.MarkSharedDurable(stats.name);
    }
    result.output = std::move(reused);
    emit_node_span(stats);
    return result;
  }

  // Interior morsel fan-out: when the cost model marks this node large
  // enough (opt::MorselBudget over the same estimates as inline
  // dispatch), install a MorselContext so the engine's hash join and
  // aggregation split their interiors across idle lanes of the run's
  // pool. Results are bit-identical to single-morsel execution, and the
  // node still completes and publishes as one unit — the in-order
  // publish protocol never observes the fan-out.
  int morsel_budget = 1;
  if (s.morsel_pool != nullptr &&
      static_cast<std::size_t>(v) < s.node_est_seconds.size()) {
    // Morsel work is pure compute, so fan-out beyond physical cores only
    // adds dispatch cost even when the pool is (deliberately)
    // oversubscribed for I/O-bound nodes. Cap at hardware concurrency
    // unless the caller pinned an explicit lane cap.
    int lane_cap = s.options.morsel_max_lanes;
    if (lane_cap <= 0) {
      lane_cap = static_cast<int>(std::thread::hardware_concurrency());
      if (lane_cap <= 0) lane_cap = 1;
    }
    morsel_budget = opt::MorselBudget(
        s.node_est_seconds[static_cast<std::size_t>(v)],
        s.options.morsel_target_seconds,
        std::min(s.morsel_pool->capacity(), lane_cap));
  }

  // Each attempt is self-contained (fresh resolver, fresh timings), so a
  // retried node reports only its successful attempt's stats, plus the
  // retries it consumed. Only transient-classified failures (injected
  // transient faults, TransientTag I/O errors) retry; CancelledError and
  // real bugs propagate on first occurrence, as does anything once the
  // token latches.
  const int retry_limit = std::max(0, s.options.retry_limit);
  for (int attempt = 0;; ++attempt) {
    try {
      if (s.options.faults != nullptr) {
        s.options.faults->MaybeThrow(fault::Site::kNodeExecute, stats.name);
      }
      double read_seconds = 0.0;
      engine::FnResolver resolver([&](const std::string& name) {
        engine::TablePtr cached = s.catalog.Get(name);
        if (cached != nullptr) return cached;
        const double start = MonotonicSeconds();
        auto table =
            std::make_shared<engine::Table>(s.disk->ReadTable(name));
        read_seconds += MonotonicSeconds() - start;
        return engine::TablePtr(table);
      });

      const double exec_start = MonotonicSeconds();
      if (morsel_budget > 1) {
        LaneMorselRunner runner(s.morsel_pool, trace,
                                s.options.trace_job_id, stats.name,
                                &s.morsel_tasks, s.options.cancel);
        engine::MorselContext morsel_context(
            &runner, morsel_budget,
            static_cast<std::size_t>(
                std::max<std::int64_t>(1, s.options.morsel_min_rows)));
        engine::MorselScope scope(&morsel_context);
        result.output = std::make_shared<engine::Table>(
            engine::ExecutePlan(*s.wl.plans[v], resolver));
      } else {
        result.output = std::make_shared<engine::Table>(
            engine::ExecutePlan(*s.wl.plans[v], resolver));
      }
      if (s.options.compress_residency) {
        result.output = CompressResidency(std::move(result.output));
      }
      const double exec_seconds = MonotonicSeconds() - exec_start;
      stats.read_seconds = read_seconds;
      stats.compute_seconds = std::max(0.0, exec_seconds - read_seconds);
      stats.output_bytes = result.output->ByteSize();
      stats.output_rows = result.output->num_rows();

      if (!s.plan.flags[v]) {
        const double w0 = MonotonicSeconds();
        s.disk->WriteTable(stats.name, *result.output);
        stats.write_seconds = MonotonicSeconds() - w0;
      }
      break;
    } catch (const std::exception& e) {
      const bool cancelled =
          s.options.cancel != nullptr && s.options.cancel->cancelled();
      if (attempt >= retry_limit || cancelled || !fault::IsTransient(e)) {
        throw;
      }
      ++stats.retries;
      s.retries.fetch_add(1, std::memory_order_relaxed);
      if (tracing) {
        trace->Instant(
            "retry", stats.name,
            StrFormat("\"job\":%llu,\"attempt\":%d,\"site\":\"execute\"",
                      static_cast<unsigned long long>(
                          s.options.trace_job_id),
                      attempt + 1));
      }
      BackoffSleep(attempt, s.options.retry_backoff_ms, s.options.cancel);
    }
  }
  emit_node_span(stats);
  return result;
}

/// Publishes node `v`'s completed result: flagged outputs enter the
/// Memory Catalog (lazy release until the Put fits, exactly the
/// sequential admission sequence) and start their background write;
/// residency bookkeeping marks nodes whose last consumer finished as
/// releasable. Must be called once per node, strictly in plan order —
/// that invariant is what keeps the catalog's budget behaviour identical
/// across lane counts. Throws on budget violation or a synchronous /
/// awaited materialization failure.
void PublishNode(RunState& s, graph::NodeId v, NodeResult result,
                 RunReport* report) {
  const graph::Graph& g = s.wl.graph;
  NodeRunStats& stats = result.stats;
  const std::string& name = g.node(v).name;

  // The publish replay runs on the coordinator thread; its span measures
  // the in-order Put / lazy-release step (including any materialization
  // waits it blocks on) — time a job spends "publishing" per the trace
  // breakdown. Not emitted on the throwing paths (the run fails anyway).
  obs::TraceRecorder* const trace = s.options.trace;
  const bool tracing = trace != nullptr && trace->enabled();
  const double publish_start = tracing ? MonotonicSeconds() : 0.0;

  // Releases one releasable entry (all dependants done), waiting for its
  // in-flight materialization first — the data must exist on disk before
  // it leaves the Memory Catalog.
  auto release_one = [&]() {
    const graph::NodeId node = s.releasable.back();
    s.releasable.pop_back();
    const std::string& node_name = g.node(node).name;
    auto it = s.in_flight.find(node_name);
    if (it != s.in_flight.end()) {
      it->second.get();  // rethrows materialization failures
      s.in_flight.erase(it);
      // The write landed: reusing jobs may now skip theirs.
      s.catalog.MarkSharedDurable(node_name);
    }
    s.catalog.Release(node_name);
  };

  if (s.plan.flags[v]) {
    // Lazy release: keep finished entries resident until space is
    // actually needed, maximizing memory-served reads.
    while (!s.catalog.Put(name, result.output,
                          result.output->ByteSize())) {
      if (s.releasable.empty()) {
        throw std::runtime_error("Memory Catalog budget violated at node " +
                                 name);
      }
      release_one();
    }
    stats.output_in_memory = true;
    if (stats.reused_cross_job && result.reused_durable) {
      // The producing job's materialization already reached disk.
      // (Reused content not yet durable falls through to the normal
      // write paths: this run's durability stays self-contained.)
    } else if (s.options.background_materialize) {
      s.in_flight.emplace(name,
                          s.materializer.Enqueue(name, result.output));
    } else {
      const double w0 = MonotonicSeconds();
      s.disk->WriteTable(name, *result.output);
      stats.write_seconds = MonotonicSeconds() - w0;
      s.catalog.MarkSharedDurable(name);
    }
  } else if (!stats.reused_cross_job) {
    // Unflagged outputs are computed anyway: publish them into the
    // cross-job layer too (no-op without one), at their replay slot so
    // the shared store fills in optimized order under pressure.
    s.catalog.PublishShared(name, result.output, stats.output_bytes);
  }

  // Mark nodes whose last consumer just finished as releasable (§III-C:
  // eligible to be freed once all dependants complete). Cross-job pins
  // end at the same boundary: once a node's last consumer published,
  // nothing in this run reads its shared entry again, so the pin (and
  // the tenant's shared-residency charge) is dropped instead of riding
  // to the end of the run.
  if (s.pending_children[static_cast<std::size_t>(v)] == 0) {
    if (s.plan.flags[v]) {
      s.releasable.push_back(v);
    } else if (stats.reused_cross_job) {
      s.catalog.UnpinShared(name);
    }
  }
  for (graph::NodeId p : g.parents(v)) {
    if (--s.pending_children[static_cast<std::size_t>(p)] == 0) {
      if (s.plan.flags[p]) {
        s.releasable.push_back(p);
      } else {
        s.catalog.UnpinShared(g.node(p).name);  // no-op if unpinned
      }
    }
  }

  if (tracing) {
    trace->Complete(
        "publish", name, publish_start,
        MonotonicSeconds() - publish_start,
        StrFormat("\"job\":%llu,\"flagged\":%s",
                  static_cast<unsigned long long>(s.options.trace_job_id),
                  s.plan.flags[v] ? "true" : "false"));
  }
  report->nodes.push_back(std::move(stats));
}

/// Per-node inline-dispatch eligibility: true when the node's estimated
/// wall cost (opt::EstimateNodeSeconds over the profiled graph metadata
/// and the run's storage device) is at or below the configured
/// threshold, so executing it on the coordinator thread beats paying the
/// lane handoff. Unprofiled nodes estimate to +inf and stay on lanes.
std::vector<char> InlineEligible(const RunState& s) {
  const graph::Graph& g = s.wl.graph;
  std::vector<char> ok(static_cast<std::size_t>(g.num_nodes()), 0);
  const double threshold = s.options.inline_node_cost_seconds;
  if (threshold <= 0) return ok;
  const std::vector<double> est =
      !s.node_est_seconds.empty()
          ? s.node_est_seconds
          : EstimateNodeCosts(g, s.plan.flags, s.disk);
  for (std::size_t v = 0; v < est.size(); ++v) {
    ok[v] = est[v] <= threshold ? 1 : 0;
  }
  return ok;
}

/// Blocks until every background materialization finished, rethrowing the
/// first failure.
void AwaitMaterializations(RunState& s) {
  s.materializer.Drain();
  for (auto& [name, future] : s.in_flight) {
    future.get();
    s.catalog.MarkSharedDurable(name);
  }
}

/// The classic sequential Controller loop (pre-parallel semantics):
/// execute and publish each node at its plan-order slot.
void RunSequential(RunState& s, RunReport* report) {
  for (const graph::NodeId v : s.plan.order.sequence) {
    PublishNode(s, v, ExecuteNode(s, v), report);
  }
  AwaitMaterializations(s);
}

/// The stage-scheduled parallel runtime with the relaxed publish
/// protocol: ready nodes execute on up to `lanes` threads of `pool` (the
/// service's shared LanePool, or an owned per-run fallback) while the
/// coordinator — the caller's thread — publishes completed results
/// strictly in plan order. Publish and dispatch are decoupled: dispatch
/// runs from lane-completion callbacks as well as after every publish, so
/// the in-order Put / lazy-release replay (which can block on disk while
/// awaiting materializations) never stalls execution of independent
/// nodes. Availability is equally decoupled: an unflagged node's children
/// are released the moment its write completes, before its publish slot.
///
/// Small nodes short-circuit the lane machinery entirely: a ready node
/// whose estimated cost falls below ControllerOptions::
/// inline_node_cost_seconds is queued to the coordinator itself, which
/// executes it between publishes — same readiness rules, same
/// reservation backpressure, same in-order publish, but no cross-thread
/// handoff (RunReport::inlined_nodes counts these).
///
/// Dispatch of flagged nodes is backpressured by catalog reservations
/// (estimated size) so that concurrently executing nodes cannot jointly
/// overshoot the budget; when a reservation cannot be funded and the node
/// is the next to publish with no lane active, it proceeds unreserved and
/// the publish-time Put enforces the budget with the sequential error
/// semantics.
void RunStageParallel(RunState& s, int lanes, LanePool* pool,
                      RunReport* report) {
  const graph::Graph& g = s.wl.graph;
  const std::vector<graph::NodeId>& seq = s.plan.order.sequence;
  StageScheduler scheduler(g, s.plan.order, s.stages);

  std::mutex mutex;
  std::condition_variable cv;
  std::map<graph::NodeId, NodeResult> completed;
  std::size_t next_publish = 0;
  int executing = 0;
  std::string error;
  // Below-threshold nodes queue here instead of going to a lane; the
  // coordinator executes them itself between publishes (inline
  // small-node dispatch). They count toward `executing` from dispatch to
  // completion, like lane nodes.
  const std::vector<char> inline_ok = InlineEligible(s);
  std::deque<graph::NodeId> inline_ready;
  // Owned fallback for standalone Controllers (no service pool). Declared
  // after every piece of state its lane tasks touch: if the coordinator
  // unwinds, ~LanePool joins the lanes while scheduler / mutex / cv /
  // completed are still alive. (With a shared pool the coordinator never
  // returns before `executing` drops to zero instead.)
  std::optional<LanePool> owned;
  if (pool == nullptr) pool = &owned.emplace(lanes);
  // Standalone runs get interior morsels on the owned fallback pool too
  // (every ExecuteNode below happens before `owned` unwinds).
  if (s.morsel_pool == nullptr && s.options.morsel_target_seconds > 0) {
    s.morsel_pool = pool;
  }

  // Dispatches ready nodes while this run's lanes are free, in
  // order-position priority. Requires `mutex`; called by the coordinator
  // (initially and after each publish) and by every lane completion, so
  // execution keeps flowing while the coordinator is blocked inside
  // PublishNode.
  // First dispatch into each antichain stage is marked with an instant
  // event — the trace shows where the run crossed stage boundaries.
  std::int32_t last_dispatched_stage = -1;
  std::function<void()> dispatch = [&] {
    // Stage-dispatch cancellation checkpoint: a latched token stops all
    // further dispatch (in-flight nodes notice at their own next
    // boundary), recorded via the run's single error slot.
    if (error.empty() && s.options.cancel != nullptr &&
        s.options.cancel->cancelled()) {
      error = s.options.cancel->reason() == CancelReason::kDeadline
                  ? kDeadlineMessage
                  : kCancelledMessage;
    }
    while (error.empty() && scheduler.HasReady()) {
      const graph::NodeId v = scheduler.PeekReady();
      // Cheap nodes run inline on the coordinator and consume no lane;
      // everything else waits for a free lane as before.
      const bool run_inline = inline_ok[static_cast<std::size_t>(v)] != 0;
      if (!run_inline && executing >= lanes) break;
      const std::string& name = g.node(v).name;
      if (s.plan.flags[v]) {
        const std::int64_t estimate =
            std::max<std::int64_t>(0, g.node(v).size_bytes);
        // Liveness escape: with no lane active and the head of the
        // publish order ready, dispatching it unreserved is exactly the
        // sequential regime — the publish-time Put enforces the budget
        // with sequential error semantics. Without this escape,
        // reservations held by completed-but-unpublished later nodes
        // could wedge the run. (While a publish is in flight the head is
        // that publishing node, never a ready one, so the escape cannot
        // race the replay.)
        const bool sequential_turn =
            executing == 0 && next_publish < seq.size() &&
            seq[next_publish] == v;
        if (!s.catalog.Reserve(name, estimate) && !sequential_turn) break;
      }
      scheduler.PopReady();
      if (s.options.trace != nullptr && s.options.trace->enabled()) {
        const std::int32_t stage = s.stages.stage_of[v];
        if (stage > last_dispatched_stage) {
          last_dispatched_stage = stage;
          s.options.trace->Instant(
              "stage", "dispatch-stage-" + std::to_string(stage),
              StrFormat("\"job\":%llu,\"stage\":%d",
                        static_cast<unsigned long long>(
                            s.options.trace_job_id),
                        static_cast<int>(stage)));
        }
      }
      // Pin resident cross-job inputs at dispatch so the shared LRU
      // cannot evict them between the scheduling decision and the
      // lane's read.
      if (s.options.shared_catalog != nullptr) {
        for (const graph::NodeId p : g.parents(v)) {
          s.catalog.PinSharedInput(g.node(p).name);
        }
      }
      ++executing;
      if (run_inline) {
        inline_ready.push_back(v);
        continue;  // the coordinator picks it up (cv signaled by caller)
      }
      pool->Submit([&s, &g, &mutex, &cv, &executing, &error, &completed,
                    &scheduler, &dispatch, v] {
        NodeResult result;
        std::string exec_error;
        try {
          result = ExecuteNode(s, v);
        } catch (const std::exception& e) {
          exec_error = e.what();
        }
        std::lock_guard<std::mutex> inner(mutex);
        --executing;
        if (exec_error.empty()) {
          // Unflagged outputs are on disk already — children may read
          // them before the (in-order) publish happens.
          if (!s.plan.flags[v]) scheduler.MarkAvailable(v);
          completed.emplace(v, std::move(result));
          try {
            dispatch();
          } catch (const std::exception& e) {
            if (error.empty()) error = e.what();
          }
        } else {
          s.catalog.CancelReservation(g.node(v).name);
          if (error.empty()) error = exec_error;
        }
        cv.notify_all();
      });
    }
  };

  std::unique_lock<std::mutex> lock(mutex);
  try {
    dispatch();
    // The coordinator replays the publish sequence in plan order; all
    // dispatching meanwhile happens from lane completions. PublishNode
    // can block on disk (lazy release awaits in-flight materializations;
    // synchronous materialization writes inline), so it runs unlocked:
    // it touches only coordinator-owned state (releasable / in_flight /
    // pending_children / report) and thread-safe stores.
    while (error.empty() && next_publish < seq.size()) {
      const graph::NodeId v = seq[next_publish];
      auto it = completed.find(v);
      if (it == completed.end()) {
        // No publish possible yet: execute queued inline nodes here, on
        // the coordinator thread — the whole point of inline dispatch is
        // skipping the lane handoff for sub-threshold nodes.
        if (!inline_ready.empty()) {
          const graph::NodeId iv = inline_ready.front();
          inline_ready.pop_front();
          lock.unlock();
          NodeResult result;
          std::string exec_error;
          try {
            result = ExecuteNode(s, iv, /*inline_exec=*/true);
          } catch (const std::exception& e) {
            exec_error = e.what();
          }
          lock.lock();
          --executing;
          if (exec_error.empty()) {
            ++report->inlined_nodes;
            if (!s.plan.flags[iv]) scheduler.MarkAvailable(iv);
            completed.emplace(iv, std::move(result));
            try {
              dispatch();
            } catch (const std::exception& e) {
              if (error.empty()) error = e.what();
            }
          } else {
            s.catalog.CancelReservation(g.node(iv).name);
            if (error.empty()) error = exec_error;
          }
          cv.notify_all();
          continue;
        }
        cv.wait(lock, [&] {
          return !error.empty() || !inline_ready.empty() ||
                 completed.count(seq[next_publish]) > 0;
        });
        continue;
      }
      NodeResult result = std::move(it->second);
      completed.erase(it);
      const bool flagged = s.plan.flags[v];
      lock.unlock();
      if (flagged) s.catalog.CancelReservation(g.node(v).name);
      std::string publish_error;
      try {
        PublishNode(s, v, std::move(result), report);
      } catch (const std::exception& e) {
        publish_error = e.what();
      }
      lock.lock();
      ++next_publish;
      if (!publish_error.empty()) {
        if (error.empty()) error = publish_error;
      } else if (flagged) {
        scheduler.MarkAvailable(v);
      }
      dispatch();  // the publish freed budget and/or readied children
      cv.notify_all();
    }
  } catch (const std::exception& e) {
    if (!lock.owns_lock()) lock.lock();
    if (error.empty()) error = e.what();
  }
  // Inline nodes still queued (error unwind) were never handed to a
  // lane: release their execution claims here so the wait below and the
  // liveness escape's executing==0 invariant stay truthful.
  while (!inline_ready.empty()) {
    const graph::NodeId v = inline_ready.front();
    inline_ready.pop_front();
    --executing;
    if (s.plan.flags[v]) s.catalog.CancelReservation(g.node(v).name);
  }
  // Every submitted task must finish before the run state unwinds —
  // mandatory with a shared pool, where nothing joins on our behalf.
  cv.wait(lock, [&] { return executing == 0; });
  lock.unlock();

  if (!error.empty()) throw std::runtime_error(error);
  AwaitMaterializations(s);
}

}  // namespace

// ---------------------------------------------------------------------------
// Controller
// ---------------------------------------------------------------------------

Controller::Controller(storage::ThrottledDisk* disk,
                       ControllerOptions options)
    : disk_(disk), options_(options) {}

void Controller::LoadBaseTables(
    const std::map<std::string, engine::TablePtr>& tables) {
  for (const auto& [name, table] : tables) {
    disk_->WriteTable(name, *table);
  }
}

RunReport Controller::Run(const workload::MvWorkload& wl,
                          const opt::Plan& plan) {
  return RunWithBudget(wl, plan, options_.budget);
}

RunReport Controller::RunWithBudget(const workload::MvWorkload& wl,
                                    const opt::Plan& plan,
                                    std::int64_t budget,
                                    const opt::StageDecomposition* stages) {
  RunReport report;
  report.budget = budget;

  std::string error;
  if (!opt::ValidatePlan(wl.graph, plan, budget, &error)) {
    report.error = "invalid plan: " + error;
    return report;
  }

  // Standalone stage-aware ordering: widen early antichains within the
  // budget. Runs after validation (so invalid plans keep the error-report
  // contract); the widened plan needs no revalidation — the order stays
  // topological and the memory gate keeps the peak within the budget.
  // A widened order invalidates any caller-supplied decomposition.
  const opt::Plan* active = &plan;
  opt::Plan widened;
  if (options_.widen_stages) {
    widened = opt::WidenStagesPrefix(wl.graph, plan, budget);
    if (widened.order.sequence != plan.order.sequence) stages = nullptr;
    active = &widened;
  }

  std::optional<opt::StageDecomposition> local_stages;
  if (stages == nullptr ||
      stages->stage_of.size() !=
          static_cast<std::size_t>(wl.graph.num_nodes())) {
    local_stages.emplace(opt::DecomposeStages(wl.graph, active->order));
    stages = &*local_stages;
  }
  const int lanes = std::min<int>(
      std::max(1, options_.max_parallel_nodes),
      static_cast<int>(std::max<std::size_t>(1, stages->width())));
  report.parallel_lanes = lanes;
  report.num_stages = stages->num_stages();

  // Already cancelled before any node ran (e.g. the deadline expired in
  // the admission queue): report without constructing run state.
  if (options_.cancel != nullptr && options_.cancel->cancelled()) {
    report.cancelled = true;
    report.cancel_reason = options_.cancel->reason();
    report.error = report.cancel_reason == CancelReason::kDeadline
                       ? kDeadlineMessage
                       : kCancelledMessage;
    return report;
  }

  RunState state(wl, *active, *stages, options_, disk_, budget);
  // Classifies a failed run as cooperatively cancelled. The stage
  // runtime collapses worker exceptions into a string, so the check is
  // token state + the exact CancelledError message constants (never a
  // substring of a real storage/engine error).
  auto classify_cancel = [&] {
    if (options_.cancel == nullptr || !options_.cancel->cancelled()) {
      return;
    }
    if (report.error == kCancelledMessage ||
        report.error == kDeadlineMessage) {
      report.cancelled = true;
      report.cancel_reason = options_.cancel->reason();
    }
  };
  const double run_start = MonotonicSeconds();
  try {
    if (lanes > 1 || options_.force_stage_runtime) {
      RunStageParallel(state, lanes, options_.lane_pool, &report);
    } else {
      RunSequential(state, &report);
    }
  } catch (const std::exception& e) {
    report.error = e.what();
    report.node_retries = state.retries.load(std::memory_order_relaxed);
    classify_cancel();
    return report;
  }
  report.wall_seconds = MonotonicSeconds() - run_start;
  report.node_retries = state.retries.load(std::memory_order_relaxed);
  report.peak_memory = state.catalog.peak_bytes();
  report.catalog_hits = state.catalog.hits();
  report.catalog_misses = state.catalog.misses();
  report.reserve_denials = state.catalog.reserve_denials();
  report.morsel_tasks =
      state.morsel_tasks.load(std::memory_order_relaxed);
  report.cross_job_hits = state.catalog.cross_job_hits();
  report.cross_job_bytes_saved = state.catalog.cross_job_bytes_saved();
  report.ok = true;
  return report;
}

RunReport Controller::RunUnoptimized(const workload::MvWorkload& wl) {
  opt::Plan plan;
  plan.order = graph::KahnTopologicalOrder(wl.graph);
  plan.flags = opt::EmptyFlags(wl.graph.num_nodes());
  return Run(wl, plan);
}

RunReport Controller::ProfileAndAnnotate(workload::MvWorkload* wl) {
  RunReport report = RunUnoptimized(*wl);
  if (!report.ok) return report;
  for (std::size_t i = 0; i < report.nodes.size(); ++i) {
    const NodeRunStats& stats = report.nodes[i];
    auto id = wl->graph.FindByName(stats.name);
    graph::NodeInfo& info = wl->graph.mutable_node(*id);
    info.size_bytes = stats.output_bytes;
    info.compute_seconds = stats.compute_seconds;
    // Approximate base input volume from observed read time and the disk
    // profile (reads of parent MVs are also disk reads in the unoptimized
    // run; subtract their known sizes).
    const double bw = disk_->profile().read_bw;
    std::int64_t parent_bytes = 0;
    for (graph::NodeId p : wl->graph.parents(*id)) {
      parent_bytes += wl->graph.node(p).size_bytes;
    }
    const std::int64_t observed = static_cast<std::int64_t>(
        stats.read_seconds * bw);
    info.base_input_bytes = std::max<std::int64_t>(0,
                                                   observed - parent_bytes);
  }
  cost::DeviceProfile profile;
  profile.disk_read_bw = disk_->profile().read_bw;
  profile.disk_write_bw = disk_->profile().write_bw;
  profile.disk_latency = disk_->profile().latency;
  cost::SpeedupEstimator estimator{cost::CostModel(profile)};
  estimator.AnnotateGraph(&wl->graph);
  return report;
}

}  // namespace sc::runtime
