#include "runtime/controller.h"

#include <algorithm>
#include <chrono>

#include "cost/speedup.h"
#include "engine/executor.h"
#include "opt/memory_usage.h"
#include "opt/optimizer.h"
#include "storage/format.h"

namespace sc::runtime {

namespace {

double MonotonicSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

// ---------------------------------------------------------------------------
// Materializer
// ---------------------------------------------------------------------------

Materializer::Materializer(storage::ThrottledDisk* disk) : disk_(disk) {
  worker_ = std::thread([this] { Loop(); });
}

Materializer::~Materializer() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  if (worker_.joinable()) worker_.join();
}

std::shared_future<void> Materializer::Enqueue(std::string name,
                                               engine::TablePtr table) {
  Task task;
  task.name = std::move(name);
  task.table = std::move(table);
  std::shared_future<void> future = task.done.get_future().share();
  {
    std::unique_lock<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  return future;
}

void Materializer::Drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  drained_cv_.wait(lock, [this] { return queue_.empty() && !busy_; });
}

void Materializer::Loop() {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      busy_ = true;
    }
    try {
      disk_->WriteTable(task.name, *task.table);
      task.done.set_value();
    } catch (...) {
      task.done.set_exception(std::current_exception());
    }
    {
      std::unique_lock<std::mutex> lock(mutex_);
      busy_ = false;
    }
    drained_cv_.notify_all();
  }
}

// ---------------------------------------------------------------------------
// RunReport
// ---------------------------------------------------------------------------

double RunReport::TotalReadSeconds() const {
  double total = 0;
  for (const auto& n : nodes) total += n.read_seconds;
  return total;
}

double RunReport::TotalComputeSeconds() const {
  double total = 0;
  for (const auto& n : nodes) total += n.compute_seconds;
  return total;
}

double RunReport::TotalWriteSeconds() const {
  double total = 0;
  for (const auto& n : nodes) total += n.write_seconds;
  return total;
}

double RunReport::CatalogHitRate() const {
  const std::int64_t total = catalog_hits + catalog_misses;
  return total == 0 ? 0.0 : static_cast<double>(catalog_hits) / total;
}

// ---------------------------------------------------------------------------
// Controller
// ---------------------------------------------------------------------------

Controller::Controller(storage::ThrottledDisk* disk,
                       ControllerOptions options)
    : disk_(disk), options_(options) {}

void Controller::LoadBaseTables(
    const std::map<std::string, engine::TablePtr>& tables) {
  for (const auto& [name, table] : tables) {
    disk_->WriteTable(name, *table);
  }
}

RunReport Controller::Run(const workload::MvWorkload& wl,
                          const opt::Plan& plan) {
  return RunWithBudget(wl, plan, options_.budget);
}

RunReport Controller::RunWithBudget(const workload::MvWorkload& wl,
                                    const opt::Plan& plan,
                                    std::int64_t budget) {
  RunReport report;
  report.budget = budget;
  std::string error;
  if (!opt::ValidatePlan(wl.graph, plan, budget, &error)) {
    report.error = "invalid plan: " + error;
    return report;
  }

  storage::MemoryCatalog catalog(budget);
  Materializer materializer(disk_);
  const graph::Graph& g = wl.graph;

  std::vector<std::int32_t> pending_children(g.num_nodes());
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    pending_children[v] = static_cast<std::int32_t>(g.children(v).size());
  }
  std::map<std::string, std::shared_future<void>> in_flight;
  std::vector<graph::NodeId> releasable;

  const double run_start = MonotonicSeconds();
  try {
    for (graph::NodeId v : plan.order.sequence) {
      NodeRunStats stats;
      stats.name = g.node(v).name;

      // Resolver: Memory Catalog first, then external storage. Disk read
      // time is accumulated into the node's read_seconds.
      double read_seconds = 0.0;
      engine::FnResolver resolver([&](const std::string& name) {
        engine::TablePtr cached = catalog.Get(name);
        if (cached != nullptr) return cached;
        const double start = MonotonicSeconds();
        auto table =
            std::make_shared<engine::Table>(disk_->ReadTable(name));
        read_seconds += MonotonicSeconds() - start;
        return engine::TablePtr(table);
      });

      const double exec_start = MonotonicSeconds();
      auto output = std::make_shared<engine::Table>(
          engine::ExecutePlan(*wl.plans[v], resolver));
      const double exec_seconds = MonotonicSeconds() - exec_start;
      stats.read_seconds = read_seconds;
      stats.compute_seconds = std::max(0.0, exec_seconds - read_seconds);
      stats.output_bytes = output->ByteSize();
      stats.output_rows = output->num_rows();

      // Releases one releasable entry (all dependants done), waiting for
      // its in-flight materialization first — the data must exist on disk
      // before it leaves the Memory Catalog.
      auto release_one = [&]() {
        const graph::NodeId node = releasable.back();
        releasable.pop_back();
        const std::string& node_name = g.node(node).name;
        auto it = in_flight.find(node_name);
        if (it != in_flight.end()) {
          it->second.get();  // rethrows materialization failures
          in_flight.erase(it);
        }
        catalog.Release(node_name);
      };

      const std::string& name = g.node(v).name;
      if (plan.flags[v]) {
        // Lazy release: keep finished entries resident until space is
        // actually needed, maximizing memory-served reads.
        while (!catalog.Put(name, output, output->ByteSize())) {
          if (releasable.empty()) {
            report.error = "Memory Catalog budget violated at node " + name;
            return report;
          }
          release_one();
        }
        stats.output_in_memory = true;
        if (options_.background_materialize) {
          in_flight.emplace(name, materializer.Enqueue(name, output));
        } else {
          const double w0 = MonotonicSeconds();
          disk_->WriteTable(name, *output);
          stats.write_seconds = MonotonicSeconds() - w0;
        }
      } else {
        const double w0 = MonotonicSeconds();
        disk_->WriteTable(name, *output);
        stats.write_seconds = MonotonicSeconds() - w0;
      }

      // Mark nodes whose last consumer just finished as releasable
      // (§III-C: eligible to be freed once all dependants complete).
      if (plan.flags[v] && pending_children[v] == 0) {
        releasable.push_back(v);
      }
      for (graph::NodeId p : g.parents(v)) {
        if (--pending_children[p] == 0 && plan.flags[p]) {
          releasable.push_back(p);
        }
      }

      report.nodes.push_back(std::move(stats));
    }
    materializer.Drain();
    for (auto& [name, future] : in_flight) future.get();
  } catch (const std::exception& e) {
    report.error = e.what();
    return report;
  }
  report.wall_seconds = MonotonicSeconds() - run_start;
  report.peak_memory = catalog.peak_bytes();
  report.catalog_hits = catalog.hits();
  report.catalog_misses = catalog.misses();
  report.ok = true;
  return report;
}

RunReport Controller::RunUnoptimized(const workload::MvWorkload& wl) {
  opt::Plan plan;
  plan.order = graph::KahnTopologicalOrder(wl.graph);
  plan.flags = opt::EmptyFlags(wl.graph.num_nodes());
  return Run(wl, plan);
}

RunReport Controller::ProfileAndAnnotate(workload::MvWorkload* wl) {
  RunReport report = RunUnoptimized(*wl);
  if (!report.ok) return report;
  for (std::size_t i = 0; i < report.nodes.size(); ++i) {
    const NodeRunStats& stats = report.nodes[i];
    auto id = wl->graph.FindByName(stats.name);
    graph::NodeInfo& info = wl->graph.mutable_node(*id);
    info.size_bytes = stats.output_bytes;
    info.compute_seconds = stats.compute_seconds;
    // Approximate base input volume from observed read time and the disk
    // profile (reads of parent MVs are also disk reads in the unoptimized
    // run; subtract their known sizes).
    const double bw = disk_->profile().read_bw;
    std::int64_t parent_bytes = 0;
    for (graph::NodeId p : wl->graph.parents(*id)) {
      parent_bytes += wl->graph.node(p).size_bytes;
    }
    const std::int64_t observed = static_cast<std::int64_t>(
        stats.read_seconds * bw);
    info.base_input_bytes = std::max<std::int64_t>(0,
                                                   observed - parent_bytes);
  }
  cost::DeviceProfile profile;
  profile.disk_read_bw = disk_->profile().read_bw;
  profile.disk_write_bw = disk_->profile().write_bw;
  profile.disk_latency = disk_->profile().latency;
  cost::SpeedupEstimator estimator{cost::CostModel(profile)};
  estimator.AnnotateGraph(&wl->graph);
  return report;
}

}  // namespace sc::runtime
