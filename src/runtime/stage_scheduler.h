#ifndef SC_RUNTIME_STAGE_SCHEDULER_H_
#define SC_RUNTIME_STAGE_SCHEDULER_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "graph/graph.h"
#include "graph/topo.h"
#include "opt/types.h"

namespace sc::runtime {

/// Ready-queue scheduling state for one stage-parallel refresh run: turns
/// the optimizer's total order plus its antichain stage decomposition into
/// a dependency-aware dispatch sequence. A node becomes *ready* once every
/// DAG parent is *available* — its output readable from the Memory Catalog
/// (flagged parents, after their in-order publish) or from external
/// storage (unflagged parents, after their write completes). Ready nodes
/// are handed out by ascending order position, so whenever lanes are
/// scarce the runtime degrades toward the optimized sequential order; with
/// one lane the dispatch sequence is exactly the optimizer's order.
///
/// Not internally synchronized: the Controller serializes every call under
/// its run mutex (lanes only touch the scheduler while holding it).
class StageScheduler {
 public:
  StageScheduler(const graph::Graph& g, const graph::Order& order,
                 const opt::StageDecomposition& stages);

  bool HasReady() const { return !ready_.empty(); }
  /// Lowest-order-position ready node, or kInvalidNode when none.
  graph::NodeId PeekReady() const;
  /// Removes and returns the lowest-order-position ready node.
  graph::NodeId PopReady();

  /// Marks `v`'s output readable, unlocking children whose parents are
  /// now all available.
  void MarkAvailable(graph::NodeId v);

  std::int32_t stage_of(graph::NodeId v) const {
    return stages_.stage_of[v];
  }
  std::size_t dispatched() const { return dispatched_; }
  bool AllDispatched() const {
    return dispatched_ ==
           static_cast<std::size_t>(order_.sequence.size());
  }

 private:
  const graph::Graph& g_;
  const graph::Order& order_;
  const opt::StageDecomposition& stages_;
  std::vector<std::int32_t> waiting_parents_;
  // Order positions of ready, undispatched nodes (min-heap).
  std::priority_queue<std::int32_t, std::vector<std::int32_t>,
                      std::greater<std::int32_t>>
      ready_;
  std::size_t dispatched_ = 0;
};

}  // namespace sc::runtime

#endif  // SC_RUNTIME_STAGE_SCHEDULER_H_
