#include "runtime/executor_pool.h"

#include <algorithm>

namespace sc::runtime {

ExecutorPool::ExecutorPool(int threads) {
  const int count = std::max(1, threads);
  lanes_.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    lanes_.emplace_back([this] { Loop(); });
  }
}

ExecutorPool::~ExecutorPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& lane : lanes_) {
    if (lane.joinable()) lane.join();
  }
}

void ExecutorPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ExecutorPool::Loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace sc::runtime
