#ifndef SC_RUNTIME_CANCEL_H_
#define SC_RUNTIME_CANCEL_H_

#include <atomic>
#include <stdexcept>
#include <string>

namespace sc::runtime {

/// Why a job was asked to stop. `kDeadline` is latched lazily: the token
/// stores an absolute deadline and the first `cancelled()` probe past it
/// promotes the token into the cancelled state.
enum class CancelReason {
  kNone = 0,
  kCancelled = 1,  // explicit RefreshService::Cancel / RequestCancel
  kDeadline = 2,   // wall-clock deadline exceeded
};

/// Exact messages carried by CancelledError. The stage runtime collapses
/// worker exceptions into a string, so the Controller recognises a
/// cooperative cancel by comparing against these constants.
inline constexpr const char kCancelledMessage[] = "job cancelled";
inline constexpr const char kDeadlineMessage[] = "job deadline exceeded";

/// Thrown at cancellation checkpoints. Deliberately *not* transient: the
/// retry machinery must never retry a cancelled unit of work.
class CancelledError : public std::runtime_error {
 public:
  explicit CancelledError(CancelReason reason)
      : std::runtime_error(reason == CancelReason::kDeadline
                               ? kDeadlineMessage
                               : kCancelledMessage),
        reason_(reason) {}

  CancelReason reason() const { return reason_; }

 private:
  CancelReason reason_;
};

/// Cooperative cancellation flag shared between the service (which sets
/// it) and every execution layer (which polls it at morsel/node/stage
/// boundaries). All members are lock-free; a token outlives the job it
/// guards because the service keeps the owning Job alive until the result
/// promise settles.
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Latches the token into the cancelled state. First reason wins.
  void RequestCancel(CancelReason reason = CancelReason::kCancelled) {
    int expected = 0;
    reason_.compare_exchange_strong(expected, static_cast<int>(reason),
                                    std::memory_order_acq_rel);
  }

  /// Arms a monotonic-clock deadline (seconds, same epoch as
  /// MonotonicSeconds). <= 0 disarms.
  void SetDeadline(double deadline_seconds) {
    deadline_.store(deadline_seconds, std::memory_order_release);
  }

  double deadline_seconds() const {
    return deadline_.load(std::memory_order_acquire);
  }

  /// True once cancel was requested or the deadline passed. Promotes an
  /// expired deadline into a latched kDeadline reason so later probes are
  /// a single atomic load.
  bool cancelled() const;

  CancelReason reason() const {
    return static_cast<CancelReason>(reason_.load(std::memory_order_acquire));
  }

  /// Checkpoint helper: throws CancelledError when cancelled.
  void ThrowIfCancelled() const {
    if (cancelled()) throw CancelledError(reason());
  }

 private:
  // 0 = live; otherwise a latched CancelReason. Mutable because a
  // deadline probe from a const context latches the reason.
  mutable std::atomic<int> reason_{0};
  std::atomic<double> deadline_{0.0};
};

}  // namespace sc::runtime

#endif  // SC_RUNTIME_CANCEL_H_
