#ifndef SC_RUNTIME_MORSEL_H_
#define SC_RUNTIME_MORSEL_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>

#include "engine/morsel.h"
#include "obs/trace.h"
#include "runtime/cancel.h"

namespace sc::runtime {

class LanePool;

/// engine::MorselRunner on the service-wide LanePool: the runtime half of
/// morsel-driven intra-operator parallelism. One instance lives for the
/// duration of one node's ExecuteNode; each Run() fans an operator's
/// interior (hash build, probe morsels, partial-aggregate passes) across
/// idle lanes of the same pool that executes whole DAG nodes.
///
/// Deadlock-free by construction: the calling thread — often itself a
/// lane running the node — always participates in a shared atomic claim
/// loop, so every Run() completes even if no helper task ever gets a
/// lane (the pool is FIFO and may be saturated with node tasks).
/// Helpers submitted to the pool are pure acceleration: they claim
/// whatever morsels the caller has not reached yet, and late helpers
/// that arrive after all morsels are claimed touch only heap-allocated
/// shared state and exit.
class LaneMorselRunner : public engine::MorselRunner {
 public:
  /// `pool` must outlive the runner. `trace` (nullable) receives one
  /// "morsel" span per helper-executed morsel on the helper lane's own
  /// track — caller-executed morsels are already inside the node's span
  /// on the caller's track, so they emit nothing (per-track busy time in
  /// AnalyzeTrace stays a sum of disjoint spans). `task_counter`
  /// (nullable) accumulates the number of morsel tasks executed by
  /// fanned-out Run() calls (RunReport::morsel_tasks). `cancel`
  /// (nullable, not owned) is polled before every morsel claim: once it
  /// latches, remaining morsels are skipped (still counted complete so
  /// the fan-out barrier terminates) and Run() throws CancelledError.
  LaneMorselRunner(LanePool* pool, obs::TraceRecorder* trace,
                   std::uint64_t trace_job_id, std::string node_name,
                   std::atomic<std::int64_t>* task_counter,
                   const CancelToken* cancel = nullptr);

  int parallelism() const override;

  void Run(std::size_t count,
           const std::function<void(std::size_t)>& fn) override;

 private:
  LanePool* pool_;
  obs::TraceRecorder* trace_;
  std::uint64_t trace_job_id_;
  std::string node_name_;
  std::atomic<std::int64_t>* task_counter_;
  const CancelToken* cancel_;
};

}  // namespace sc::runtime

#endif  // SC_RUNTIME_MORSEL_H_
