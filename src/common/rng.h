#ifndef SC_COMMON_RNG_H_
#define SC_COMMON_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

namespace sc {

/// Deterministic random number generator used throughout S/C so that data
/// generation, synthetic DAGs, and randomized baselines are reproducible
/// from a seed. Thin wrapper over std::mt19937_64 with convenience draws.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 42) : gen_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// Bernoulli draw with success probability p in [0, 1].
  bool Bernoulli(double p);

  /// Gaussian draw.
  double Normal(double mean, double stddev);

  /// Zipf-like skewed integer in [1, n]; exponent s controls skew.
  std::int64_t Zipf(std::int64_t n, double s);

  /// Samples an index in [0, weights.size()) proportionally to weights.
  /// Weights must be non-negative; returns 0 if all are zero.
  std::size_t WeightedIndex(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    for (std::size_t i = items->size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(
          UniformInt(0, static_cast<std::int64_t>(i) - 1));
      std::swap((*items)[i - 1], (*items)[j]);
    }
  }

  std::mt19937_64& engine() { return gen_; }

 private:
  std::mt19937_64 gen_;
};

}  // namespace sc

#endif  // SC_COMMON_RNG_H_
