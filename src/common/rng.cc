#include "common/rng.h"

#include <cmath>

namespace sc {

std::int64_t Rng::UniformInt(std::int64_t lo, std::int64_t hi) {
  std::uniform_int_distribution<std::int64_t> dist(lo, hi);
  return dist(gen_);
}

double Rng::UniformDouble(double lo, double hi) {
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(gen_);
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  std::bernoulli_distribution dist(p);
  return dist(gen_);
}

double Rng::Normal(double mean, double stddev) {
  std::normal_distribution<double> dist(mean, stddev);
  return dist(gen_);
}

std::int64_t Rng::Zipf(std::int64_t n, double s) {
  // Rejection-inversion would be overkill for our sizes; use the inverse-CDF
  // of the continuous bounded Pareto as an approximation, clamped to [1, n].
  if (n <= 1) return 1;
  const double u = UniformDouble(0.0, 1.0);
  double value;
  if (std::abs(s - 1.0) < 1e-9) {
    value = std::exp(u * std::log(static_cast<double>(n)));
  } else {
    const double t = std::pow(static_cast<double>(n), 1.0 - s);
    value = std::pow(u * (t - 1.0) + 1.0, 1.0 / (1.0 - s));
  }
  std::int64_t k = static_cast<std::int64_t>(value);
  if (k < 1) k = 1;
  if (k > n) k = n;
  return k;
}

std::size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  double total = 0;
  for (double w : weights) total += w > 0 ? w : 0;
  if (total <= 0) return 0;
  double draw = UniformDouble(0.0, total);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0 ? weights[i] : 0;
    if (draw < w) return i;
    draw -= w;
  }
  return weights.size() - 1;
}

}  // namespace sc
