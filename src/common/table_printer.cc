#include "common/table_printer.h"

#include <algorithm>
#include <sstream>

namespace sc {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

void TablePrinter::AddSeparator() { rows_.emplace_back(); }

void TablePrinter::Print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_rule = [&]() {
    os << '+';
    for (std::size_t w : widths) {
      os << std::string(w + 2, '-') << '+';
    }
    os << '\n';
  };
  auto print_row = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      os << ' ' << cell << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    os << '\n';
  };
  print_rule();
  print_row(header_);
  print_rule();
  for (const auto& row : rows_) {
    if (row.empty()) {
      print_rule();
    } else {
      print_row(row);
    }
  }
  print_rule();
}

std::string TablePrinter::ToString() const {
  std::ostringstream oss;
  Print(oss);
  return oss.str();
}

}  // namespace sc
