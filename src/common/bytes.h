#ifndef SC_COMMON_BYTES_H_
#define SC_COMMON_BYTES_H_

#include <cstdint>
#include <string>

namespace sc {

/// Byte-count helpers. All sizes in S/C are expressed in plain bytes
/// (std::int64_t) so that arithmetic with the cost model stays exact.

inline constexpr std::int64_t kKiB = 1024;
inline constexpr std::int64_t kMiB = 1024 * kKiB;
inline constexpr std::int64_t kGiB = 1024 * kMiB;

/// 1 KB/MB/GB in the decimal sense used by the paper ("1.6GB Memory
/// Catalog", "519.8 MB/s").
inline constexpr std::int64_t kKB = 1000;
inline constexpr std::int64_t kMB = 1000 * kKB;
inline constexpr std::int64_t kGB = 1000 * kMB;

/// Renders a byte count with a human-readable suffix, e.g. "1.60GB".
/// Uses decimal units to match the paper's notation.
std::string FormatBytes(std::int64_t bytes);

/// Parses strings like "512MB", "1.6GB", "800KB", "123" (plain bytes).
/// Returns -1 on a malformed input.
std::int64_t ParseBytes(const std::string& text);

}  // namespace sc

#endif  // SC_COMMON_BYTES_H_
