#ifndef SC_COMMON_FNV_H_
#define SC_COMMON_FNV_H_

#include <cstdint>
#include <cstring>
#include <string>

namespace sc {

/// FNV-1a mixing helpers shared by every fingerprinting site (plan-cache
/// graph fingerprints, per-node content fingerprints for the cross-job
/// SharedCatalog). Stable across processes, unlike std::hash.
inline constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

inline void FnvMixBytes(std::uint64_t* h, const void* data,
                        std::size_t len) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    *h ^= p[i];
    *h *= kFnvPrime;
  }
}

inline void FnvMixInt(std::uint64_t* h, std::int64_t value) {
  FnvMixBytes(h, &value, sizeof(value));
}

inline void FnvMixUint(std::uint64_t* h, std::uint64_t value) {
  FnvMixBytes(h, &value, sizeof(value));
}

inline void FnvMixDouble(std::uint64_t* h, double value) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  FnvMixBytes(h, &bits, sizeof(bits));
}

inline void FnvMixString(std::uint64_t* h, const std::string& s) {
  FnvMixInt(h, static_cast<std::int64_t>(s.size()));
  FnvMixBytes(h, s.data(), s.size());
}

}  // namespace sc

#endif  // SC_COMMON_FNV_H_
