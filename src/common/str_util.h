#ifndef SC_COMMON_STR_UTIL_H_
#define SC_COMMON_STR_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace sc {

/// Splits `text` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view text, char sep);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Removes leading/trailing ASCII whitespace.
std::string Trim(std::string_view text);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace sc

#endif  // SC_COMMON_STR_UTIL_H_
