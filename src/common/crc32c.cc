#include "common/crc32c.h"

#include <array>
#include <cstring>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#include <immintrin.h>  // crc32/pclmul intrinsics (guarded per-function)
#endif

namespace sc::common {

namespace {

constexpr std::uint32_t kPoly = 0x82F63B78u;  // reflected 0x1EDC6F41

struct Tables {
  std::uint32_t t[8][256];
  Tables() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int k = 0; k < 8; ++k) {
        crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
      }
      t[0][i] = crc;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = t[0][i];
      for (int slice = 1; slice < 8; ++slice) {
        crc = t[0][crc & 0xff] ^ (crc >> 8);
        t[slice][i] = crc;
      }
    }
  }
};

const Tables& tables() {
  static const Tables instance;
  return instance;
}

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define SC_CRC32C_HW 1

// Hardware paths. The SSE4.2 crc32 instruction computes exactly this
// polynomial but is port-bound at 8 bytes/cycle even with enough
// independent chains to hide its latency; carry-less multiplication
// (pclmulqdq) folds 16-byte lanes on a different execution port, so
// running both at once roughly doubles throughput. Streams hashed
// independently are recombined by exploiting that the raw CRC register
// is linear over GF(2): appending B zero bytes is a fixed linear
// operator, precomputed as four 256-entry tables from its 32 basis
// images.

/// Zero-byte shift operator for one fixed block length.
struct ShiftTables {
  std::uint32_t t[4][256];
  explicit ShiftTables(std::size_t block) {
    const Tables& tb = tables();
    std::uint32_t basis[32];
    for (int bit = 0; bit < 32; ++bit) {
      std::uint32_t s = 1u << bit;
      for (std::size_t i = 0; i < block; ++i) {
        s = (s >> 8) ^ tb.t[0][s & 0xff];
      }
      basis[bit] = s;
    }
    for (int k = 0; k < 4; ++k) {
      for (std::uint32_t b = 0; b < 256; ++b) {
        std::uint32_t v = 0;
        for (int i = 0; i < 8; ++i) {
          if (b & (1u << i)) v ^= basis[8 * k + i];
        }
        t[k][b] = v;
      }
    }
  }
  std::uint32_t Shift(std::uint32_t crc) const {
    return t[0][crc & 0xff] ^ t[1][(crc >> 8) & 0xff] ^
           t[2][(crc >> 16) & 0xff] ^ t[3][crc >> 24];
  }
};

/// Block length for the plain three-chain crc32 path (three chains fully
/// hide the instruction's 3-cycle latency).
constexpr std::size_t kChainBlock = 2048;

const ShiftTables& chain_shift() {
  static const ShiftTables instance(kChainBlock);
  return instance;
}

std::uint64_t Load64(const unsigned char* p) {
  std::uint64_t word;
  std::memcpy(&word, p, 8);
  return word;
}

/// Raw-register CRC using the crc32 instruction only. For state s and
/// block D: state(s, D) = state(0, D) ^ Z(s) where Z appends |D| zero
/// bytes, so three independently-hashed blocks fold as
/// Shift(Shift(a) ^ b) ^ c.
__attribute__((target("sse4.2"))) std::uint32_t Crc32cChains(
    const unsigned char* p, std::size_t size, std::uint32_t crc) {
  const ShiftTables& st = chain_shift();
  while (size >= 3 * kChainBlock) {
    std::uint64_t a = crc;
    std::uint64_t b = 0;
    std::uint64_t c = 0;
    for (std::size_t i = 0; i < kChainBlock; i += 8) {
      a = _mm_crc32_u64(a, Load64(p + i));
      b = _mm_crc32_u64(b, Load64(p + kChainBlock + i));
      c = _mm_crc32_u64(c, Load64(p + 2 * kChainBlock + i));
    }
    crc = st.Shift(st.Shift(static_cast<std::uint32_t>(a)) ^
                   static_cast<std::uint32_t>(b)) ^
          static_cast<std::uint32_t>(c);
    p += 3 * kChainBlock;
    size -= 3 * kChainBlock;
  }
  while (size >= 8) {
    crc = static_cast<std::uint32_t>(_mm_crc32_u64(crc, Load64(p)));
    p += 8;
    size -= 8;
  }
  while (size-- > 0) {
    crc = _mm_crc32_u8(crc, *p++);
  }
  return crc;
}

// Hybrid layout: each super-block is [Q0 | Q1 | Q2 | P] where the three
// Q streams (kHybridBlock bytes each) go through crc32 chains and P
// (3 * kHybridBlock bytes) through six interleaved pclmul fold lanes of
// 96-byte stride. Per unrolled iteration that is 12 crc32q (port-bound
// 12 cycles) against 12 pclmulqdq on another port — both sides process
// 96 bytes, so the super-block runs at roughly twice the crc32-only
// rate.
constexpr std::size_t kHybridBlock = 4096;
constexpr std::size_t kSuperBlock = 6 * kHybridBlock;

const ShiftTables& hybrid_shift() {
  static const ShiftTables instance(kHybridBlock);
  return instance;
}

std::uint32_t Reflect32(std::uint32_t v) {
  std::uint32_t r = 0;
  for (int i = 0; i < 32; ++i) {
    r = (r << 1) | ((v >> i) & 1);
  }
  return r;
}

/// x^n mod P(x) in the normal polynomial domain, returned bit-reflected
/// and shifted left one — the 33-bit operand shape pclmulqdq needs in
/// the reflected domain. Multiplying a bit-reflected 64-bit polynomial
/// by such a constant lands the product in the bit-reflected 128-bit
/// layout times an extra x^32, so fold exponents below are all 32 less
/// than the nominal shift (the classic x^(shift +/- 32) constant pair).
std::uint64_t FoldConstant(int n) {
  std::uint64_t r = 1;  // x^0
  for (int i = 0; i < n; ++i) {
    r <<= 1;
    if (r & (1ull << 32)) r ^= 0x11EDC6F41ull;
  }
  return static_cast<std::uint64_t>(Reflect32(static_cast<std::uint32_t>(r)))
         << 1;
}

struct FoldConstants {
  // Lane fold: X <- X * x^768 (96-byte stride). The register's low
  // qword holds the polynomial's high half (pairs with x^(768+64)), and
  // each constant drops 32 for the clmul alignment factor.
  std::uint64_t k832 = FoldConstant(768 + 64 - 32);
  std::uint64_t k768 = FoldConstant(768 - 32);
  // Lane combine: X <- X * x^128 (16-byte shift).
  std::uint64_t k192 = FoldConstant(128 + 64 - 32);
  std::uint64_t k128 = FoldConstant(128 - 32);
};

const FoldConstants& fold_constants() {
  static const FoldConstants instance;
  return instance;
}

__attribute__((target("sse4.2,pclmul"))) std::uint32_t Crc32cHybrid(
    const unsigned char* p, std::size_t size, std::uint32_t crc) {
  const ShiftTables& st = hybrid_shift();
  const FoldConstants& fc = fold_constants();
  const __m128i kfold = _mm_set_epi64x(
      static_cast<long long>(fc.k768), static_cast<long long>(fc.k832));
  const __m128i kcomb = _mm_set_epi64x(
      static_cast<long long>(fc.k128), static_cast<long long>(fc.k192));
  while (size >= kSuperBlock) {
    const unsigned char* q0p = p;
    const unsigned char* q1p = p + kHybridBlock;
    const unsigned char* q2p = p + 2 * kHybridBlock;
    const unsigned char* pp = p + 3 * kHybridBlock;
    std::uint64_t q0 = crc;
    std::uint64_t q1 = 0;
    std::uint64_t q2 = 0;
    __m128i x0 = _mm_setzero_si128();
    __m128i x1 = _mm_setzero_si128();
    __m128i x2 = _mm_setzero_si128();
    __m128i x3 = _mm_setzero_si128();
    __m128i x4 = _mm_setzero_si128();
    __m128i x5 = _mm_setzero_si128();
    for (std::size_t i = 0; i < kHybridBlock; i += 32) {
      // Three crc32 chains, 32 bytes each.
      q0 = _mm_crc32_u64(q0, Load64(q0p + i));
      q1 = _mm_crc32_u64(q1, Load64(q1p + i));
      q2 = _mm_crc32_u64(q2, Load64(q2p + i));
      q0 = _mm_crc32_u64(q0, Load64(q0p + i + 8));
      q1 = _mm_crc32_u64(q1, Load64(q1p + i + 8));
      q2 = _mm_crc32_u64(q2, Load64(q2p + i + 8));
      q0 = _mm_crc32_u64(q0, Load64(q0p + i + 16));
      q1 = _mm_crc32_u64(q1, Load64(q1p + i + 16));
      q2 = _mm_crc32_u64(q2, Load64(q2p + i + 16));
      q0 = _mm_crc32_u64(q0, Load64(q0p + i + 24));
      q1 = _mm_crc32_u64(q1, Load64(q1p + i + 24));
      q2 = _mm_crc32_u64(q2, Load64(q2p + i + 24));
      // Six pclmul fold lanes, 16 bytes each (96-byte stride per lane).
      const unsigned char* chunk = pp + 3 * i;
      x0 = _mm_xor_si128(
          _mm_xor_si128(_mm_clmulepi64_si128(x0, kfold, 0x00),
                        _mm_clmulepi64_si128(x0, kfold, 0x11)),
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(chunk)));
      x1 = _mm_xor_si128(
          _mm_xor_si128(_mm_clmulepi64_si128(x1, kfold, 0x00),
                        _mm_clmulepi64_si128(x1, kfold, 0x11)),
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(chunk + 16)));
      x2 = _mm_xor_si128(
          _mm_xor_si128(_mm_clmulepi64_si128(x2, kfold, 0x00),
                        _mm_clmulepi64_si128(x2, kfold, 0x11)),
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(chunk + 32)));
      x3 = _mm_xor_si128(
          _mm_xor_si128(_mm_clmulepi64_si128(x3, kfold, 0x00),
                        _mm_clmulepi64_si128(x3, kfold, 0x11)),
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(chunk + 48)));
      x4 = _mm_xor_si128(
          _mm_xor_si128(_mm_clmulepi64_si128(x4, kfold, 0x00),
                        _mm_clmulepi64_si128(x4, kfold, 0x11)),
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(chunk + 64)));
      x5 = _mm_xor_si128(
          _mm_xor_si128(_mm_clmulepi64_si128(x5, kfold, 0x00),
                        _mm_clmulepi64_si128(x5, kfold, 0x11)),
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(chunk + 80)));
    }
    // Combine the six lanes: P == sum_j X_j * x^(128 * (5 - j)) mod P.
    __m128i x = x0;
    const __m128i lanes[5] = {x1, x2, x3, x4, x5};
    for (const __m128i& lane : lanes) {
      x = _mm_xor_si128(
          _mm_xor_si128(_mm_clmulepi64_si128(x, kcomb, 0x00),
                        _mm_clmulepi64_si128(x, kcomb, 0x11)),
          lane);
    }
    // Reduce the 128-bit remainder by running its 16 bytes through the
    // crc32 instruction from a zero state: the result equals the raw
    // CRC register of the whole P region processed alone.
    alignas(16) std::uint64_t xw[2];
    _mm_store_si128(reinterpret_cast<__m128i*>(xw), x);
    const std::uint32_t t = static_cast<std::uint32_t>(
        _mm_crc32_u64(_mm_crc32_u64(0, xw[0]), xw[1]));
    // Stitch the four regions: total = Z3B(ZB(ZB(q0) ^ q1) ^ q2) ^ t.
    std::uint32_t s =
        st.Shift(static_cast<std::uint32_t>(q0)) ^
        static_cast<std::uint32_t>(q1);
    s = st.Shift(s) ^ static_cast<std::uint32_t>(q2);
    s = st.Shift(st.Shift(st.Shift(s))) ^ t;
    crc = s;
    p += kSuperBlock;
    size -= kSuperBlock;
  }
  return Crc32cChains(p, size, crc);
}

bool HasSse42() {
  static const bool has = __builtin_cpu_supports("sse4.2");
  return has;
}

bool HasPclmul() {
  static const bool has =
      __builtin_cpu_supports("sse4.2") && __builtin_cpu_supports("pclmul");
  return has;
}
#endif  // x86-64 hardware path

}  // namespace

std::uint32_t Crc32c(const void* data, std::size_t size,
                     std::uint32_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t crc = ~seed;
#if defined(SC_CRC32C_HW)
  if (size >= kSuperBlock && HasPclmul()) return ~Crc32cHybrid(p, size, crc);
  if (HasSse42()) return ~Crc32cChains(p, size, crc);
#endif
  const Tables& tb = tables();
  // Slicing-by-8: fold one aligned 8-byte word per iteration.
  while (size >= 8) {
    std::uint64_t word;
    std::memcpy(&word, p, 8);
    word ^= crc;  // little-endian host (the formats are host-order too)
    crc = tb.t[7][word & 0xff] ^ tb.t[6][(word >> 8) & 0xff] ^
          tb.t[5][(word >> 16) & 0xff] ^ tb.t[4][(word >> 24) & 0xff] ^
          tb.t[3][(word >> 32) & 0xff] ^ tb.t[2][(word >> 40) & 0xff] ^
          tb.t[1][(word >> 48) & 0xff] ^ tb.t[0][word >> 56];
    p += 8;
    size -= 8;
  }
  while (size-- > 0) {
    crc = tb.t[0][(crc ^ *p++) & 0xff] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace sc::common
