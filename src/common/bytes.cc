#include "common/bytes.h"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace sc {

std::string FormatBytes(std::int64_t bytes) {
  const bool negative = bytes < 0;
  const double b = std::abs(static_cast<double>(bytes));
  const char* suffix = "B";
  double value = b;
  if (b >= static_cast<double>(kGB)) {
    suffix = "GB";
    value = b / static_cast<double>(kGB);
  } else if (b >= static_cast<double>(kMB)) {
    suffix = "MB";
    value = b / static_cast<double>(kMB);
  } else if (b >= static_cast<double>(kKB)) {
    suffix = "KB";
    value = b / static_cast<double>(kKB);
  }
  char buf[64];
  if (suffix[0] == 'B') {
    std::snprintf(buf, sizeof(buf), "%s%lldB", negative ? "-" : "",
                  static_cast<long long>(std::llround(value)));
  } else {
    std::snprintf(buf, sizeof(buf), "%s%.2f%s", negative ? "-" : "", value,
                  suffix);
  }
  return buf;
}

std::int64_t ParseBytes(const std::string& text) {
  if (text.empty()) return -1;
  size_t pos = 0;
  // Parse the numeric prefix (integer or decimal).
  while (pos < text.size() &&
         (std::isdigit(static_cast<unsigned char>(text[pos])) ||
          text[pos] == '.' || text[pos] == '-' || text[pos] == '+')) {
    ++pos;
  }
  if (pos == 0) return -1;
  double value = 0;
  try {
    value = std::stod(text.substr(0, pos));
  } catch (...) {
    return -1;
  }
  std::string unit = text.substr(pos);
  for (char& c : unit) c = static_cast<char>(std::toupper(c));
  double multiplier = 1.0;
  if (unit.empty() || unit == "B") {
    multiplier = 1.0;
  } else if (unit == "KB" || unit == "K") {
    multiplier = static_cast<double>(kKB);
  } else if (unit == "MB" || unit == "M") {
    multiplier = static_cast<double>(kMB);
  } else if (unit == "GB" || unit == "G") {
    multiplier = static_cast<double>(kGB);
  } else if (unit == "KIB") {
    multiplier = static_cast<double>(kKiB);
  } else if (unit == "MIB") {
    multiplier = static_cast<double>(kMiB);
  } else if (unit == "GIB") {
    multiplier = static_cast<double>(kGiB);
  } else {
    return -1;
  }
  return static_cast<std::int64_t>(std::llround(value * multiplier));
}

}  // namespace sc
