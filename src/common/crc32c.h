#ifndef SC_COMMON_CRC32C_H_
#define SC_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace sc::common {

/// CRC-32C (Castagnoli polynomial 0x1EDC6F41, reflected), the checksum
/// the storage formats use for per-block and whole-file integrity.
/// Dispatches at runtime to a three-way-interleaved SSE4.2 crc32
/// implementation on x86-64 (multiple GB/s, so verified reads stay
/// within a few percent of unverified parsing — the CI overhead gate in
/// bench_service_throughput holds it to 5%), with a portable software
/// slicing-by-8 fallback.
///
/// `seed` is the value returned by a previous call, so checksums chain
/// across buffers: Crc32c(b, nb, Crc32c(a, na)) == Crc32c(a+b, na+nb).
/// A zero seed starts a fresh checksum.
std::uint32_t Crc32c(const void* data, std::size_t size,
                     std::uint32_t seed = 0);

}  // namespace sc::common

#endif  // SC_COMMON_CRC32C_H_
