#ifndef SC_COMMON_CLOCK_H_
#define SC_COMMON_CLOCK_H_

namespace sc {

/// Seconds on the process-wide monotonic clock. All timing in the
/// runtime and service layers (node stats, queue waits, the starvation
/// gauge) uses this one helper, so timestamps taken in different files
/// are always comparable.
double MonotonicSeconds();

}  // namespace sc

#endif  // SC_COMMON_CLOCK_H_
