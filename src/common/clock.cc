#include "common/clock.h"

#include <chrono>

namespace sc {

double MonotonicSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace sc
