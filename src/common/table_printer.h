#ifndef SC_COMMON_TABLE_PRINTER_H_
#define SC_COMMON_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace sc {

/// Renders rows of strings as an aligned ASCII table. Used by every
/// benchmark harness so that bench output matches the paper's tables.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends one data row. Rows shorter than the header are padded.
  void AddRow(std::vector<std::string> row);

  /// Inserts a horizontal separator before the next row.
  void AddSeparator();

  /// Writes the formatted table to `os`.
  void Print(std::ostream& os) const;

  std::string ToString() const;

 private:
  std::vector<std::string> header_;
  // Each row is either a data row or a marker (empty vector) for a rule.
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace sc

#endif  // SC_COMMON_TABLE_PRINTER_H_
