#ifndef SC_API_SC_H_
#define SC_API_SC_H_

/// \file
/// Single-include public facade for the S/C library.
///
/// Typical usage (see examples/quickstart.cpp):
///
///   sc::graph::Graph g = ...;                   // dependency graph
///   sc::cost::SpeedupEstimator est{sc::cost::CostModel{}};
///   est.AnnotateGraph(&g);                      // speedup scores T
///   sc::opt::Optimizer optimizer;
///   auto result = optimizer.Optimize(g, budget);  // S/C Opt (Alg. 2)
///   // result.plan: execution order + flagged nodes; feed it to the
///   // simulator (sc::sim::SimulateRun) or the Controller
///   // (sc::runtime::Controller::Run).
///
/// For concurrent multi-tenant serving, submit jobs to
/// sc::service::RefreshService instead (see
/// examples/multi_tenant_service.cpp): it queues, arbitrates the shared
/// Memory-Catalog budget, caches plans, and drives Controllers on worker
/// threads.

#include "common/bytes.h"
#include "common/rng.h"
#include "common/str_util.h"
#include "common/table_printer.h"
#include "cost/cost_model.h"
#include "cost/speedup.h"
#include "engine/executor.h"
#include "engine/plan.h"
#include "engine/plan_serde.h"
#include "graph/dot.h"
#include "graph/fingerprint.h"
#include "graph/graph.h"
#include "graph/serde.h"
#include "graph/topo.h"
#include "opt/alternating.h"
#include "opt/constraints.h"
#include "opt/ma_dfs.h"
#include "opt/memory_usage.h"
#include "opt/mkp.h"
#include "opt/optimizer.h"
#include "opt/schedulers.h"
#include "opt/selectors.h"
#include "opt/stages.h"
#include "runtime/controller.h"
#include "runtime/lane_pool.h"
#include "runtime/stage_scheduler.h"
#include "service/budget_broker.h"
#include "service/metrics.h"
#include "service/parallelism_broker.h"
#include "service/plan_cache.h"
#include "service/service.h"
#include "sim/cluster.h"
#include "sim/lru_cache.h"
#include "sim/refresh_sim.h"
#include "storage/memory_catalog.h"
#include "storage/shared_catalog.h"
#include "storage/throttled_disk.h"
#include "workload/dag_gen.h"
#include "workload/datagen.h"
#include "workload/scale_model.h"
#include "workload/workload_io.h"
#include "workload/workloads.h"

#endif  // SC_API_SC_H_
