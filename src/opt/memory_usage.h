#ifndef SC_OPT_MEMORY_USAGE_H_
#define SC_OPT_MEMORY_USAGE_H_

#include <cstdint>
#include <vector>

#include "opt/types.h"

namespace sc::opt {

/// Memory-occupancy accounting for a refresh run (paper §IV, §V).
///
/// A flagged node v is resident in the Memory Catalog from the slot in
/// which v executes through the slot in which its last child executes
/// (inclusive); it is freed immediately after. A flagged node with no
/// children is resident only during its own slot (created, then released
/// once materialized).

/// The execution slot after which flagged node `v` can be released:
/// max over children c of position[c], or position[v] if childless.
std::int32_t ReleaseSlot(const graph::Graph& g, const graph::Order& order,
                         graph::NodeId v);

/// Memory occupied by flagged nodes at each execution slot; the value at
/// index k is the combined size of flagged nodes resident while the k-th
/// node executes.
std::vector<std::int64_t> MemoryTimeline(const graph::Graph& g,
                                         const graph::Order& order,
                                         const FlagSet& flags);

/// Peak of MemoryTimeline — the quantity constrained by the Memory Catalog
/// size M (computed in one linear scan, Algorithm 2 line 8).
std::int64_t PeakMemoryUsage(const graph::Graph& g, const graph::Order& order,
                             const FlagSet& flags);

/// Average memory usage — the S/C Opt-Order objective (Problem 3):
///   (1/n) * sum over flagged v of (release_slot(v) - position(v)) * size(v)
/// assuming unit job execution times.
double AverageMemoryUsage(const graph::Graph& g, const graph::Order& order,
                          const FlagSet& flags);

/// True iff flagging `flags` under `order` never exceeds budget M.
bool IsFeasible(const graph::Graph& g, const graph::Order& order,
                const FlagSet& flags, std::int64_t budget);

}  // namespace sc::opt

#endif  // SC_OPT_MEMORY_USAGE_H_
