#include "opt/stages.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace sc::opt {

std::size_t StageDecomposition::width() const {
  std::size_t widest = 0;
  for (const auto& stage : stages) widest = std::max(widest, stage.size());
  return widest;
}

StageDecomposition DecomposeStages(const graph::Graph& g,
                                   const graph::Order& order) {
  const std::int32_t n = g.num_nodes();
  if (static_cast<std::int32_t>(order.sequence.size()) != n) {
    throw std::invalid_argument(
        "DecomposeStages: order does not cover the graph");
  }
  StageDecomposition result;
  result.stage_of.assign(n, -1);
  for (const graph::NodeId v : order.sequence) {
    std::int32_t stage = 0;
    for (const graph::NodeId p : g.parents(v)) {
      if (result.stage_of[p] < 0) {
        throw std::invalid_argument(
            "DecomposeStages: order is not topological at node " +
            g.node(v).name);
      }
      stage = std::max(stage, result.stage_of[p] + 1);
    }
    result.stage_of[v] = stage;
    if (stage >= result.num_stages()) {
      result.stages.resize(static_cast<std::size_t>(stage) + 1);
    }
    // Iterating order.sequence keeps each stage sorted by order position.
    result.stages[static_cast<std::size_t>(stage)].push_back(v);
  }
  return result;
}

std::size_t StageWidth(const graph::Graph& g, const graph::Order& order) {
  const std::int32_t n = g.num_nodes();
  if (static_cast<std::int32_t>(order.sequence.size()) != n) {
    throw std::invalid_argument(
        "StageWidth: order does not cover the graph");
  }
  std::vector<std::int32_t> stage_of(static_cast<std::size_t>(n), -1);
  std::vector<std::size_t> counts;
  std::size_t widest = 0;
  for (const graph::NodeId v : order.sequence) {
    std::int32_t stage = 0;
    for (const graph::NodeId p : g.parents(v)) {
      stage = std::max(stage, stage_of[static_cast<std::size_t>(p)] + 1);
    }
    stage_of[static_cast<std::size_t>(v)] = stage;
    if (static_cast<std::size_t>(stage) >= counts.size()) {
      counts.resize(static_cast<std::size_t>(stage) + 1, 0);
    }
    widest = std::max(widest, ++counts[static_cast<std::size_t>(stage)]);
  }
  return widest;
}

std::vector<double> EstimateNodeSeconds(const graph::Graph& g,
                                        const FlagSet& flags,
                                        const cost::CostModel& model,
                                        bool charge_io) {
  const std::size_t n = static_cast<std::size_t>(g.num_nodes());
  std::vector<double> seconds(n, 0.0);
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    const graph::NodeInfo& info = g.node(v);
    if (info.compute_seconds <= 0.0 && info.size_bytes <= 0) {
      // Never profiled: cost unknown — assume large.
      seconds[static_cast<std::size_t>(v)] =
          std::numeric_limits<double>::infinity();
      continue;
    }
    double est = info.compute_seconds;
    if (charge_io) {
      std::int64_t read_bytes = std::max<std::int64_t>(
          0, info.base_input_bytes);
      for (const graph::NodeId p : g.parents(v)) {
        read_bytes += std::max<std::int64_t>(0, g.node(p).size_bytes);
      }
      const bool flagged = static_cast<std::size_t>(v) < flags.size() &&
                           flags[static_cast<std::size_t>(v)];
      // Flagged outputs enter the Memory Catalog and write in the
      // background — only unflagged nodes block the lane on the write.
      const std::int64_t write_bytes =
          flagged ? 0 : std::max<std::int64_t>(0, info.size_bytes);
      est = model.NodeExecSeconds(info.compute_seconds, read_bytes,
                                  write_bytes, info.file_count);
    }
    seconds[static_cast<std::size_t>(v)] = est;
  }
  return seconds;
}

int MorselBudget(double est_seconds, double target_seconds,
                 int max_morsels) {
  if (target_seconds <= 0 || max_morsels <= 1) return 1;
  if (!(est_seconds > target_seconds)) return 1;  // also rejects NaN
  const double ratio = est_seconds / target_seconds;
  if (!(ratio < static_cast<double>(max_morsels))) return max_morsels;
  return static_cast<int>(std::ceil(ratio));
}

std::string DescribeStages(const graph::Graph& g,
                           const StageDecomposition& stages) {
  std::ostringstream out;
  for (std::int32_t k = 0; k < stages.num_stages(); ++k) {
    const auto& stage = stages.stages[static_cast<std::size_t>(k)];
    out << "stage " << k << " [width " << stage.size() << "]:";
    for (const graph::NodeId v : stage) out << " " << g.node(v).name;
    out << "\n";
  }
  return out.str();
}

}  // namespace sc::opt
