#include "opt/ma_dfs.h"

#include <algorithm>

#include "common/rng.h"

namespace sc::opt {

// MA-DFS (paper §V-B). A DFS-flavoured list scheduler: at every step the
// set of candidates is every ready node (all parents executed), ranked by
//
//   1. lower actual memory consumption (node size if flagged, else 0) —
//      the paper's tie-break rule: defer large flagged nodes so they are
//      resident for fewer slots;
//   2. more flagged bytes released by executing the candidate (it is the
//      last pending child of flagged parents) — "compute the largest
//      flagged dependencies of a node last" so they leave memory sooner;
//   3. recency: prefer children of the most recently executed node, which
//      finishes a branch of execution before starting a new one (the DFS
//      property that minimizes parent residency);
//   4. smaller node id (determinism).
graph::Order MaDfsOrder(const graph::Graph& g, const FlagSet& flags) {
  const std::int32_t n = g.num_nodes();
  std::vector<std::int32_t> unexecuted_parents(n, 0);
  std::vector<std::int32_t> pending_children(n, 0);
  for (graph::NodeId v = 0; v < n; ++v) {
    unexecuted_parents[v] = static_cast<std::int32_t>(g.parents(v).size());
    pending_children[v] = static_cast<std::int32_t>(g.children(v).size());
  }
  std::vector<std::int32_t> executed_at(n, -1);
  std::vector<graph::NodeId> ready;
  for (graph::NodeId v = 0; v < n; ++v) {
    if (unexecuted_parents[v] == 0) ready.push_back(v);
  }

  auto actual_memory = [&](graph::NodeId v) -> std::int64_t {
    return flags[v] ? g.node(v).size_bytes : 0;
  };
  // Flagged bytes freed if `v` executes now: every flagged parent for
  // which v is the last unexecuted child gets released.
  auto released_bytes = [&](graph::NodeId v) -> std::int64_t {
    std::int64_t released = 0;
    for (graph::NodeId p : g.parents(v)) {
      if (flags[p] && pending_children[p] == 1) {
        released += g.node(p).size_bytes;
      }
    }
    return released;
  };
  auto recency = [&](graph::NodeId v) -> std::int32_t {
    std::int32_t latest = -1;
    for (graph::NodeId p : g.parents(v)) {
      latest = std::max(latest, executed_at[p]);
    }
    return latest;
  };
  auto better = [&](graph::NodeId a, graph::NodeId b) {
    const std::int64_t ma = actual_memory(a);
    const std::int64_t mb = actual_memory(b);
    if (ma != mb) return ma < mb;
    const std::int64_t ra = released_bytes(a);
    const std::int64_t rb = released_bytes(b);
    if (ra != rb) return ra > rb;
    const std::int32_t da = recency(a);
    const std::int32_t db = recency(b);
    if (da != db) return da > db;
    return a < b;
  };

  std::vector<graph::NodeId> seq;
  seq.reserve(n);
  while (!ready.empty()) {
    std::size_t best = 0;
    for (std::size_t i = 1; i < ready.size(); ++i) {
      if (better(ready[i], ready[best])) best = i;
    }
    const graph::NodeId v = ready[best];
    ready[best] = ready.back();
    ready.pop_back();
    executed_at[v] = static_cast<std::int32_t>(seq.size());
    seq.push_back(v);
    for (graph::NodeId p : g.parents(v)) pending_children[p]--;
    for (graph::NodeId c : g.children(v)) {
      if (--unexecuted_parents[c] == 0) ready.push_back(c);
    }
  }
  return graph::Order::FromSequence(std::move(seq));
}

graph::Order RandomDfsOrder(const graph::Graph& g, std::uint64_t seed) {
  Rng rng(seed);
  graph::TieBreak tie_break =
      [&rng](const std::vector<graph::NodeId>& candidates) -> std::size_t {
    return static_cast<std::size_t>(rng.UniformInt(
        0, static_cast<std::int64_t>(candidates.size()) - 1));
  };
  return graph::DfsSchedule(g, tie_break);
}

}  // namespace sc::opt
