#include "opt/schedulers.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <queue>

#include "common/rng.h"
#include "opt/ma_dfs.h"
#include "opt/memory_usage.h"

namespace sc::opt {

std::string ToString(SchedulerMethod method) {
  switch (method) {
    case SchedulerMethod::kMaDfs:
      return "MA-DFS";
    case SchedulerMethod::kSimAnneal:
      return "SA";
    case SchedulerMethod::kSeparator:
      return "Separator";
    case SchedulerMethod::kRandomDfs:
      return "RandomDFS";
    case SchedulerMethod::kKahn:
      return "Topo";
  }
  return "unknown";
}

namespace {

/// True iff swapping the nodes at positions p < q keeps the order
/// topological: every parent of seq[q] must execute before slot p and every
/// child of seq[p] must execute after slot q.
bool SwapIsValid(const graph::Graph& g, const graph::Order& order,
                 std::int32_t p, std::int32_t q) {
  const graph::NodeId u = order.sequence[p];
  const graph::NodeId v = order.sequence[q];
  for (graph::NodeId parent : g.parents(v)) {
    if (order.position[parent] >= p) return false;
  }
  for (graph::NodeId child : g.children(u)) {
    if (order.position[child] <= q) return false;
  }
  return true;
}

void ApplySwap(graph::Order* order, std::int32_t p, std::int32_t q) {
  std::swap(order->sequence[p], order->sequence[q]);
  order->position[order->sequence[p]] = p;
  order->position[order->sequence[q]] = q;
}

}  // namespace

graph::Order SimulatedAnnealingOrder(const graph::Graph& g,
                                     const FlagSet& flags,
                                     const graph::Order& initial,
                                     const SimAnnealOptions& options) {
  const std::int32_t n = g.num_nodes();
  if (n < 2) return initial;
  Rng rng(options.seed);
  graph::Order current = initial;
  double current_cost = AverageMemoryUsage(g, current, flags);
  graph::Order best = current;
  double best_cost = current_cost;
  // Normalize cost deltas so the temperature schedule is scale-free.
  const double scale = std::max<double>(
      1.0, static_cast<double>(TotalFlaggedSize(g, flags)));
  for (std::int32_t iter = 0; iter < options.iterations; ++iter) {
    std::int32_t p = static_cast<std::int32_t>(rng.UniformInt(0, n - 1));
    std::int32_t q = static_cast<std::int32_t>(rng.UniformInt(0, n - 1));
    if (p == q) continue;
    if (p > q) std::swap(p, q);
    if (!SwapIsValid(g, current, p, q)) continue;
    ApplySwap(&current, p, q);
    if (options.budget != INT64_MAX &&
        !IsFeasible(g, current, flags, options.budget)) {
      ApplySwap(&current, p, q);  // Revert: swap violates the budget.
      continue;
    }
    const double new_cost = AverageMemoryUsage(g, current, flags);
    const double delta = (new_cost - current_cost) / scale;
    const double temperature =
        options.initial_temperature *
        (1.0 - static_cast<double>(iter) /
                   static_cast<double>(options.iterations));
    const bool accept =
        delta < 0.0 ||
        (temperature > 1e-12 &&
         rng.Bernoulli(std::exp(-delta / temperature)));
    if (accept) {
      current_cost = new_cost;
      if (current_cost < best_cost) {
        best_cost = current_cost;
        best = current;
      }
    } else {
      ApplySwap(&current, p, q);  // Revert.
    }
  }
  return best;
}

namespace {

/// Recursive separator partitioning. `nodes` is a precedence-convex subset
/// of the graph; the function appends a valid relative order of `nodes` to
/// `out`. The front half A is grown greedily from ready nodes (all intra-
/// subset parents already in A), preferring nodes whose inclusion adds the
/// least flagged size across the A/B cut.
void SeparatorRecurse(const graph::Graph& g, const FlagSet& flags,
                      std::vector<graph::NodeId> nodes,
                      std::vector<graph::NodeId>* out) {
  const std::size_t count = nodes.size();
  if (count == 0) return;
  if (count == 1) {
    out->push_back(nodes[0]);
    return;
  }
  std::vector<bool> in_subset(g.num_nodes(), false);
  for (graph::NodeId v : nodes) in_subset[v] = true;

  // Intra-subset indegrees.
  std::vector<std::int32_t> pending(g.num_nodes(), 0);
  for (graph::NodeId v : nodes) {
    for (graph::NodeId parent : g.parents(v)) {
      if (in_subset[parent]) pending[v]++;
    }
  }
  std::vector<bool> taken(g.num_nodes(), false);
  std::vector<graph::NodeId> ready;
  for (graph::NodeId v : nodes) {
    if (pending[v] == 0) ready.push_back(v);
  }

  // Cost of taking v into A now: the flagged bytes v keeps live across the
  // cut (its own size if flagged and it has unfinished children).
  auto marginal_cost = [&](graph::NodeId v) -> std::int64_t {
    if (!flags[v]) return 0;
    for (graph::NodeId child : g.children(v)) {
      if (in_subset[child] && !taken[child]) return g.node(v).size_bytes;
    }
    return 0;
  };

  const std::size_t target = count / 2;
  std::vector<graph::NodeId> front;
  while (front.size() < target && !ready.empty()) {
    std::size_t best = 0;
    for (std::size_t i = 1; i < ready.size(); ++i) {
      if (marginal_cost(ready[i]) < marginal_cost(ready[best]) ||
          (marginal_cost(ready[i]) == marginal_cost(ready[best]) &&
           ready[i] < ready[best])) {
        best = i;
      }
    }
    const graph::NodeId v = ready[best];
    ready.erase(ready.begin() + static_cast<std::ptrdiff_t>(best));
    taken[v] = true;
    front.push_back(v);
    for (graph::NodeId child : g.children(v)) {
      if (in_subset[child] && --pending[child] == 0) {
        ready.push_back(child);
      }
    }
  }
  std::vector<graph::NodeId> back;
  for (graph::NodeId v : nodes) {
    if (!taken[v]) back.push_back(v);
  }
  assert(!front.empty() && !back.empty());
  SeparatorRecurse(g, flags, std::move(front), out);
  SeparatorRecurse(g, flags, std::move(back), out);
}

}  // namespace

graph::Order SeparatorOrder(const graph::Graph& g, const FlagSet& flags) {
  std::vector<graph::NodeId> all(g.num_nodes());
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) all[v] = v;
  std::vector<graph::NodeId> seq;
  seq.reserve(all.size());
  SeparatorRecurse(g, flags, std::move(all), &seq);
  return graph::Order::FromSequence(std::move(seq));
}

graph::Order ScheduleOrder(SchedulerMethod method, const graph::Graph& g,
                           const FlagSet& flags, const graph::Order& current,
                           std::uint64_t seed, std::int64_t budget) {
  switch (method) {
    case SchedulerMethod::kMaDfs:
      return MaDfsOrder(g, flags);
    case SchedulerMethod::kSimAnneal: {
      SimAnnealOptions options;
      options.seed = seed;
      options.budget = budget;
      return SimulatedAnnealingOrder(g, flags, current, options);
    }
    case SchedulerMethod::kSeparator:
      return SeparatorOrder(g, flags);
    case SchedulerMethod::kRandomDfs:
      return RandomDfsOrder(g, seed);
    case SchedulerMethod::kKahn:
      return graph::KahnTopologicalOrder(g);
  }
  return current;
}

}  // namespace sc::opt
