#include "opt/selectors.h"

#include <algorithm>
#include <numeric>

#include "common/rng.h"
#include "opt/memory_usage.h"
#include "opt/mkp.h"

namespace sc::opt {

namespace {

/// Flags nodes in the sequence given by `candidates`, keeping each node
/// only if the flag set remains feasible. Nodes with zero score or
/// oversized outputs are skipped (they are in V_exclude).
FlagSet FlagWhileFeasible(const graph::Graph& g, const graph::Order& order,
                          std::int64_t budget,
                          const std::vector<graph::NodeId>& candidates) {
  FlagSet flags = EmptyFlags(g.num_nodes());
  for (graph::NodeId v : candidates) {
    if (g.node(v).speedup_score <= 0.0) continue;
    if (g.node(v).size_bytes > budget) continue;
    flags[v] = true;
    if (!IsFeasible(g, order, flags, budget)) flags[v] = false;
  }
  return flags;
}

}  // namespace

std::string ToString(SelectorMethod method) {
  switch (method) {
    case SelectorMethod::kMkp:
      return "MKP";
    case SelectorMethod::kGreedy:
      return "Greedy";
    case SelectorMethod::kRandom:
      return "Random";
    case SelectorMethod::kRatio:
      return "Ratio";
  }
  return "unknown";
}

FlagSet SelectGreedy(const graph::Graph& g, const graph::Order& order,
                     std::int64_t budget) {
  return FlagWhileFeasible(g, order, budget, order.sequence);
}

FlagSet SelectRandom(const graph::Graph& g, const graph::Order& order,
                     std::int64_t budget, std::uint64_t seed) {
  std::vector<graph::NodeId> candidates(g.num_nodes());
  std::iota(candidates.begin(), candidates.end(), 0);
  Rng rng(seed);
  rng.Shuffle(&candidates);
  return FlagWhileFeasible(g, order, budget, candidates);
}

FlagSet SelectRatio(const graph::Graph& g, const graph::Order& order,
                    std::int64_t budget) {
  std::vector<graph::NodeId> candidates(g.num_nodes());
  std::iota(candidates.begin(), candidates.end(), 0);
  std::sort(candidates.begin(), candidates.end(),
            [&](graph::NodeId a, graph::NodeId b) {
              const double wa = static_cast<double>(
                  std::max<std::int64_t>(g.node(a).size_bytes, 1));
              const double wb = static_cast<double>(
                  std::max<std::int64_t>(g.node(b).size_bytes, 1));
              const double ra = g.node(a).speedup_score / wa;
              const double rb = g.node(b).speedup_score / wb;
              if (ra != rb) return ra > rb;
              return a < b;
            });
  return FlagWhileFeasible(g, order, budget, candidates);
}

FlagSet SelectFlags(SelectorMethod method, const graph::Graph& g,
                    const graph::Order& order, std::int64_t budget,
                    std::uint64_t seed) {
  switch (method) {
    case SelectorMethod::kMkp:
      return SimplifiedMkp(g, order, budget);
    case SelectorMethod::kGreedy:
      return SelectGreedy(g, order, budget);
    case SelectorMethod::kRandom:
      return SelectRandom(g, order, budget, seed);
    case SelectorMethod::kRatio:
      return SelectRatio(g, order, budget);
  }
  return EmptyFlags(g.num_nodes());
}

}  // namespace sc::opt
