#ifndef SC_OPT_ALTERNATING_H_
#define SC_OPT_ALTERNATING_H_

#include <cstdint>
#include <vector>

#include "opt/mkp.h"
#include "opt/schedulers.h"
#include "opt/selectors.h"
#include "opt/types.h"

namespace sc::opt {

/// Why the alternating optimization loop terminated.
enum class StopReason {
  kNoImprovement,    // MKP found no better flag set (Algorithm 2 line 5).
  kInfeasibleOrder,  // New order violates the budget (line 8).
  kIterationLimit,   // Safety valve; should not trigger in practice.
};

/// Configuration for Algorithm 2. The selector/scheduler fields enable the
/// paper's ablation study (§VI-F): the default pair (MKP, MA-DFS) is the
/// S/C solution; swapping either reproduces an ablated method.
struct AlternatingOptions {
  SelectorMethod selector = SelectorMethod::kMkp;
  SchedulerMethod scheduler = SchedulerMethod::kMaDfs;

  /// Convergence test of line 5. The paper's prose argues convergence by
  /// total speedup score while the pseudocode compares total flagged size;
  /// kScore is the default (provably convergent), kSize matches the
  /// pseudocode literally.
  enum class Convergence { kScore, kSize };
  Convergence convergence = Convergence::kScore;

  std::int32_t max_iterations = 50;
  std::uint64_t seed = 42;
  MkpOptions mkp;

  /// Applies the opt::WidenStages post-pass to the converged plan:
  /// reorders the MA-DFS total order stage-major among memory-equivalent
  /// prefixes so early antichains are as wide as possible — feeding the
  /// parallel runtime's lanes without changing peak memory or the flag
  /// set. Off by default (irrelevant for sequential execution); the
  /// RefreshService turns it on whenever intra-job lanes are enabled.
  bool widen_stages = false;
};

/// One iteration's snapshot, for convergence diagnostics and tests.
struct IterationTrace {
  double total_score = 0.0;
  std::int64_t total_flagged_size = 0;
  double average_memory = 0.0;
  std::int64_t peak_memory = 0;
};

struct AlternatingResult {
  Plan plan;
  double total_score = 0.0;
  std::int32_t iterations = 0;
  StopReason stop_reason = StopReason::kNoImprovement;
  std::vector<IterationTrace> trace;
};

/// Algorithm 2: alternately solve S/C Opt-Nodes (flag selection for a fixed
/// order) and S/C Opt-Order (reordering to lower average memory usage),
/// starting from a plain topological order and an empty flag set.
AlternatingResult AlternatingOptimize(const graph::Graph& g,
                                      std::int64_t budget,
                                      const AlternatingOptions& options = {});

}  // namespace sc::opt

#endif  // SC_OPT_ALTERNATING_H_
