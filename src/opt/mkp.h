#ifndef SC_OPT_MKP_H_
#define SC_OPT_MKP_H_

#include <cstdint>
#include <vector>

#include "opt/constraints.h"
#include "opt/types.h"

namespace sc::opt {

/// A multidimensional 0-1 knapsack instance (paper §V-A):
///
///   maximize   sum_i x_i * profit_i
///   subject to sum_{i in members[c]} x_i * weight_i <= capacity,  for all c
///              x_i in {0, 1}
///
/// Items are the MKP nodes; each constraint c corresponds to one maximal,
/// non-trivial constraint set V_i sharing the single capacity M.
struct MkpProblem {
  std::vector<double> profits;       // speedup scores t_i
  std::vector<std::int64_t> weights; // node sizes s_i
  /// members[c] lists item indices participating in constraint c.
  std::vector<std::vector<std::int32_t>> members;
  std::int64_t capacity = 0;         // Memory Catalog size M
};

struct MkpOptions {
  /// Branch-and-bound node budget; on exhaustion the best incumbent found
  /// so far is returned with optimal == false. 0 means unlimited.
  std::int64_t node_limit = 25'000;
  /// Number of constraints evaluated per bound computation (the bound is
  /// the minimum over evaluated constraints; fewer is cheaper but looser,
  /// each individual constraint still yields an admissible bound).
  std::int32_t bound_constraints = 8;
};

struct MkpResult {
  std::vector<bool> selected;
  double objective = 0.0;
  bool optimal = true;
  std::int64_t nodes_explored = 0;
};

/// Exact solver: depth-first branch and bound on items ordered by profit
/// density, with a per-constraint fractional-knapsack upper bound. This is
/// the BinaryMKPSolver subroutine of Algorithm 1 (the paper uses OR-Tools'
/// BnB solver; this is a from-scratch equivalent).
MkpResult SolveMkpBranchAndBound(const MkpProblem& problem,
                                 const MkpOptions& options = {});

/// Exhaustive 2^n reference solver for test verification (n <= 30).
MkpResult SolveMkpBruteForce(const MkpProblem& problem);

/// Density-greedy heuristic: take items in decreasing profit/weight order
/// when all constraints permit. Used to seed the BnB incumbent.
MkpResult SolveMkpGreedy(const MkpProblem& problem);

/// Builds the MKP instance for graph `g` from pruned constraint sets.
MkpProblem BuildMkpProblem(const graph::Graph& g, const ConstraintSets& cs,
                           std::int64_t budget);

/// Algorithm 1 end-to-end (SimplifiedMKP): constraint construction, MKP
/// solve, and re-inclusion of free nodes. Returns the flag set U.
FlagSet SimplifiedMkp(const graph::Graph& g, const graph::Order& order,
                      std::int64_t budget, const MkpOptions& options = {});

}  // namespace sc::opt

#endif  // SC_OPT_MKP_H_
