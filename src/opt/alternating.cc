#include "opt/alternating.h"

#include "opt/ma_dfs.h"
#include "opt/memory_usage.h"
#include "opt/optimizer.h"

namespace sc::opt {

namespace {

FlagSet RunSelector(const AlternatingOptions& options, const graph::Graph& g,
                    const graph::Order& order, std::int64_t budget,
                    std::uint64_t seed) {
  if (options.selector == SelectorMethod::kMkp) {
    const ConstraintSets cs = GetConstraints(g, order, budget);
    const MkpProblem problem = BuildMkpProblem(g, cs, budget);
    const MkpResult result = SolveMkpBranchAndBound(problem, options.mkp);
    FlagSet flags = EmptyFlags(g.num_nodes());
    for (std::size_t i = 0; i < cs.mkp_nodes.size(); ++i) {
      if (result.selected[i]) flags[cs.mkp_nodes[i]] = true;
    }
    for (graph::NodeId v : cs.free_nodes) flags[v] = true;
    return flags;
  }
  return SelectFlags(options.selector, g, order, budget, seed);
}

}  // namespace

AlternatingResult AlternatingOptimize(const graph::Graph& g,
                                      std::int64_t budget,
                                      const AlternatingOptions& options) {
  AlternatingResult result;
  // Lines 1-2: initial execution order and empty flag set. Any topological
  // sort is admissible (Algorithm 2 line 1); we start from the DFS-based
  // order, which the paper observes yields high-quality local optima
  // (§I: "starting from a specially designed variant of DFS") — a
  // breadth-first order makes all large roots resident simultaneously and
  // can trap the very first iteration.
  graph::Order tau = MaDfsOrder(g, EmptyFlags(g.num_nodes()));
  FlagSet flags = EmptyFlags(g.num_nodes());
  result.stop_reason = StopReason::kIterationLimit;

  for (std::int32_t iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;
    // Line 4: U_new = SimplifiedMKP(G, S, T, M, tau)  (or an ablated
    // selector). Derive a per-iteration seed so Random differs across
    // iterations but stays reproducible.
    const std::uint64_t iter_seed =
        options.seed + static_cast<std::uint64_t>(iter) * 7919u;
    FlagSet new_flags = RunSelector(options, g, tau, budget, iter_seed);

    // Line 5: convergence test.
    const bool improved =
        options.convergence == AlternatingOptions::Convergence::kScore
            ? TotalScore(g, new_flags) > TotalScore(g, flags)
            : TotalFlaggedSize(g, new_flags) > TotalFlaggedSize(g, flags);
    if (!improved) {
      result.stop_reason = StopReason::kNoImprovement;
      break;
    }
    flags = std::move(new_flags);  // Line 6.

    IterationTrace trace;
    trace.total_score = TotalScore(g, flags);
    trace.total_flagged_size = TotalFlaggedSize(g, flags);
    trace.average_memory = AverageMemoryUsage(g, tau, flags);
    trace.peak_memory = PeakMemoryUsage(g, tau, flags);
    result.trace.push_back(trace);

    // Line 7: tau_new = scheduler(G, S, T, M, U).
    graph::Order new_tau =
        ScheduleOrder(options.scheduler, g, flags, tau, iter_seed, budget);

    // Line 8: if the new order violates the budget, the previous order is
    // final.
    if (PeakMemoryUsage(g, new_tau, flags) > budget) {
      result.stop_reason = StopReason::kInfeasibleOrder;
      break;
    }
    tau = std::move(new_tau);  // Line 9.
  }

  // Guard: never return a plan worse than a single-shot selection on the
  // plain topological order (protects against pathological DAGs where the
  // DFS starting point converges to a poor local optimum).
  const graph::Order kahn = graph::KahnTopologicalOrder(g);
  FlagSet kahn_flags = RunSelector(options, g, kahn, budget, options.seed);
  if (TotalScore(g, kahn_flags) > TotalScore(g, flags)) {
    tau = kahn;
    flags = std::move(kahn_flags);
  }

  result.plan.order = std::move(tau);
  result.plan.flags = std::move(flags);
  if (options.widen_stages) {
    // Budget-gated, so the feasibility guarantees above still hold. The
    // greedy-prefix variant falls back to widening only the leading
    // stages when the full stage-major reorder would overshoot.
    result.plan = WidenStagesPrefix(g, result.plan, budget);
  }
  result.total_score = TotalScore(g, result.plan.flags);
  return result;
}

}  // namespace sc::opt
