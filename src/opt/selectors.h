#ifndef SC_OPT_SELECTORS_H_
#define SC_OPT_SELECTORS_H_

#include <cstdint>
#include <string>

#include "opt/types.h"

namespace sc::opt {

/// Baseline flag-set selectors for S/C Opt-Nodes (paper §VI-A, §VI-F).
/// All respect the Memory-Catalog feasibility constraint: a node is flagged
/// only if the resulting set stays within budget under `order`.

/// Methods for choosing the flagged set U given a fixed execution order.
enum class SelectorMethod {
  kMkp,     // Algorithm 1: exact MKP via branch and bound (ours).
  kGreedy,  // Flag nodes in execution order while feasible.
  kRandom,  // Flag nodes in random order while feasible.
  kRatio,   // Flag nodes by speedup/size ratio while feasible [60].
};

std::string ToString(SelectorMethod method);

/// Greedy: iterate nodes in execution order; flag each node if doing so
/// keeps peak memory within budget.
FlagSet SelectGreedy(const graph::Graph& g, const graph::Order& order,
                     std::int64_t budget);

/// Random: iterate nodes in a seeded random order; flag if feasible.
FlagSet SelectRandom(const graph::Graph& g, const graph::Order& order,
                     std::int64_t budget, std::uint64_t seed);

/// Ratio-based selection: flag nodes in decreasing speedup-score / size
/// order while feasible (the heuristic of Xin et al. [60]).
FlagSet SelectRatio(const graph::Graph& g, const graph::Order& order,
                    std::int64_t budget);

/// Dispatch helper used by the alternating optimizer's ablation mode.
FlagSet SelectFlags(SelectorMethod method, const graph::Graph& g,
                    const graph::Order& order, std::int64_t budget,
                    std::uint64_t seed);

}  // namespace sc::opt

#endif  // SC_OPT_SELECTORS_H_
