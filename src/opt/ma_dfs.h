#ifndef SC_OPT_MA_DFS_H_
#define SC_OPT_MA_DFS_H_

#include <cstdint>

#include "opt/types.h"

namespace sc::opt {

/// Memory-Aware DFS (paper §V-B): the S/C solution to S/C Opt-Order.
///
/// Produces a DFS-flavoured topological execution order that minimizes the
/// time between a node's execution and its children's, hence the average
/// memory usage of flagged nodes. Candidates (ready nodes) are ranked by:
/// (1) lower *actual memory consumption* — the node's size if flagged, 0
/// otherwise (the paper's tie-break: defer large flagged nodes, Figure 8's
/// v2-before-v3 rule); (2) more flagged bytes released by executing the
/// candidate, so large flagged dependencies leave memory as soon as
/// possible (Figure 7's v4-before-v3 order); (3) recency — prefer children
/// of the most recently executed node, which finishes a branch of
/// execution before starting a new one; (4) node id, for determinism.
graph::Order MaDfsOrder(const graph::Graph& g, const FlagSet& flags);

/// DFS-based scheduling with seeded random tie-breaking — the off-the-shelf
/// baseline MA-DFS is compared against (paper Figure 8 discussion).
graph::Order RandomDfsOrder(const graph::Graph& g, std::uint64_t seed);

}  // namespace sc::opt

#endif  // SC_OPT_MA_DFS_H_
