#ifndef SC_OPT_CONSTRAINTS_H_
#define SC_OPT_CONSTRAINTS_H_

#include <cstdint>
#include <vector>

#include "opt/types.h"

namespace sc::opt {

/// Output of the GetConstraints subroutine of Algorithm 1 (paper §V-A).
///
/// For a fixed execution order τ, the constraint set of slot k is the set
/// of candidate nodes whose flagged output would be resident in the Memory
/// Catalog while the k-th node executes:
///
///   V_i = { v_j | τ(j) <= τ(i) <= max over children k of v_j of τ(k) }
///
/// restricted to candidates (nodes not in V_exclude). Constraint sets that
/// are non-maximal (strict subsets of another set) or trivial (total size
/// <= M even if everything is flagged) are pruned; they cannot change the
/// MKP optimum.
struct ConstraintSets {
  /// Pruned, maximal, non-trivial constraint sets (sorted node ids each).
  std::vector<std::vector<graph::NodeId>> sets;
  /// V_exclude: nodes with size > M or speedup score == 0. Never flagged.
  std::vector<graph::NodeId> excluded;
  /// Candidates appearing in no surviving constraint set: flagging them is
  /// always safe, so Algorithm 1 line 9 adds them to U unconditionally.
  std::vector<graph::NodeId> free_nodes;
  /// Union of nodes across `sets` — the variables of the MKP.
  std::vector<graph::NodeId> mkp_nodes;
};

/// Computes the constraint sets for graph `g` under order `order` and
/// Memory Catalog size `budget`. Single scan over the execution slots plus
/// subset pruning.
ConstraintSets GetConstraints(const graph::Graph& g,
                              const graph::Order& order, std::int64_t budget);

/// Reference implementation used by tests: materializes the live set at
/// every slot without any pruning (still excludes V_exclude members).
std::vector<std::vector<graph::NodeId>> AllLiveSets(const graph::Graph& g,
                                                    const graph::Order& order,
                                                    std::int64_t budget);

}  // namespace sc::opt

#endif  // SC_OPT_CONSTRAINTS_H_
