#include "opt/constraints.h"

#include <algorithm>
#include <set>

#include "opt/memory_usage.h"

namespace sc::opt {

namespace {

/// True iff node v is excluded from flagging: it cannot fit in the Memory
/// Catalog by itself, or flagging it would not improve the objective.
bool IsExcluded(const graph::Graph& g, graph::NodeId v, std::int64_t budget) {
  return g.node(v).size_bytes > budget || g.node(v).speedup_score == 0.0;
}

}  // namespace

std::vector<std::vector<graph::NodeId>> AllLiveSets(
    const graph::Graph& g, const graph::Order& order, std::int64_t budget) {
  const std::int32_t n = g.num_nodes();
  std::vector<std::vector<graph::NodeId>> live_sets(n);
  for (std::int32_t k = 0; k < n; ++k) {
    for (graph::NodeId v = 0; v < n; ++v) {
      if (IsExcluded(g, v, budget)) continue;
      if (order.position[v] <= k && k <= ReleaseSlot(g, order, v)) {
        live_sets[k].push_back(v);
      }
    }
    std::sort(live_sets[k].begin(), live_sets[k].end());
  }
  return live_sets;
}

ConstraintSets GetConstraints(const graph::Graph& g,
                              const graph::Order& order,
                              std::int64_t budget) {
  const std::int32_t n = g.num_nodes();
  ConstraintSets out;

  std::vector<bool> excluded(n, false);
  for (graph::NodeId v = 0; v < n; ++v) {
    if (IsExcluded(g, v, budget)) {
      excluded[v] = true;
      out.excluded.push_back(v);
    }
  }

  // Incremental scan over slots: maintain the set of live candidates.
  // The live set changes only by (a) inserting the node executed at slot k
  // and (b) removing nodes whose release slot is k - 1. A live set can be a
  // strict subset of another only if it is a subset of the set at an
  // adjacent "grow-only" step, so we record the set at every slot where the
  // NEXT step removes something (and at the final slot) — those are the
  // locally maximal sets — then do a global subset prune for safety.
  std::vector<std::vector<graph::NodeId>> release_at(n);
  for (graph::NodeId v = 0; v < n; ++v) {
    if (!excluded[v]) {
      release_at[ReleaseSlot(g, order, v)].push_back(v);
    }
  }

  std::set<graph::NodeId> live;
  std::vector<std::vector<graph::NodeId>> candidates_sets;
  for (std::int32_t k = 0; k < n; ++k) {
    const graph::NodeId executed = order.sequence[k];
    if (!excluded[executed]) live.insert(executed);
    const bool removes_after = !release_at[k].empty();
    if ((removes_after || k == n - 1) && !live.empty()) {
      candidates_sets.emplace_back(live.begin(), live.end());
    }
    for (graph::NodeId v : release_at[k]) live.erase(v);
  }

  // Prune trivial sets (cannot be violated even if fully flagged).
  std::vector<std::vector<graph::NodeId>> nontrivial;
  for (auto& s : candidates_sets) {
    std::int64_t total = 0;
    for (graph::NodeId v : s) total += g.node(v).size_bytes;
    if (total > budget) nontrivial.push_back(std::move(s));
  }

  // Global subset prune (sets are sorted; O(#sets^2 * len)).
  auto is_subset = [](const std::vector<graph::NodeId>& a,
                      const std::vector<graph::NodeId>& b) {
    return std::includes(b.begin(), b.end(), a.begin(), a.end());
  };
  std::vector<bool> dominated(nontrivial.size(), false);
  for (std::size_t i = 0; i < nontrivial.size(); ++i) {
    for (std::size_t j = 0; j < nontrivial.size() && !dominated[i]; ++j) {
      if (i == j || dominated[j]) continue;
      if (nontrivial[i].size() < nontrivial[j].size() &&
          is_subset(nontrivial[i], nontrivial[j])) {
        dominated[i] = true;
      } else if (nontrivial[i] == nontrivial[j] && j < i) {
        dominated[i] = true;  // Keep only the first of duplicates.
      }
    }
  }
  for (std::size_t i = 0; i < nontrivial.size(); ++i) {
    if (!dominated[i]) out.sets.push_back(std::move(nontrivial[i]));
  }

  // MKP variables: union of surviving sets. Free nodes: candidates in no
  // surviving set.
  std::vector<bool> in_mkp(n, false);
  for (const auto& s : out.sets) {
    for (graph::NodeId v : s) in_mkp[v] = true;
  }
  for (graph::NodeId v = 0; v < n; ++v) {
    if (in_mkp[v]) {
      out.mkp_nodes.push_back(v);
    } else if (!excluded[v]) {
      out.free_nodes.push_back(v);
    }
  }
  return out;
}

}  // namespace sc::opt
