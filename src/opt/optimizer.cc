#include "opt/optimizer.h"

#include <algorithm>
#include <sstream>

#include "common/bytes.h"
#include "common/str_util.h"
#include "common/table_printer.h"
#include "opt/memory_usage.h"
#include "opt/stages.h"

namespace sc::opt {

AlternatingResult Optimizer::Optimize(const graph::Graph& g,
                                      std::int64_t budget) const {
  return AlternatingOptimize(g, budget, options_);
}

AlternatingResult Optimizer::OptimizeWithEstimator(
    graph::Graph* g, std::int64_t budget,
    const cost::SpeedupEstimator& estimator) const {
  estimator.AnnotateGraph(g);
  return AlternatingOptimize(*g, budget, options_);
}

AlternatingResult ReOptimizeAtBudget(const graph::Graph& g,
                                     const Plan& prior, std::int64_t budget,
                                     const AlternatingOptions& options) {
  std::string error;
  if (ValidatePlan(g, prior, budget, &error)) {
    AlternatingResult result;
    result.plan = prior;
    result.total_score = TotalScore(g, prior.flags);
    result.iterations = 0;
    result.stop_reason = StopReason::kNoImprovement;
    return result;
  }
  return AlternatingOptimize(g, budget, options);
}

AlternatingResult ReOptimizeWithResidency(
    const graph::Graph& g, const Plan& prior, std::int64_t budget,
    const std::vector<bool>& resident, const AlternatingOptions& options) {
  bool adjusts = false;
  if (resident.size() == static_cast<std::size_t>(g.num_nodes())) {
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      if (resident[static_cast<std::size_t>(v)] &&
          g.node(v).speedup_score > 0.0) {
        adjusts = true;
        break;
      }
    }
  }
  if (!adjusts) {
    AlternatingResult result;
    result.plan = prior;
    result.total_score = TotalScore(g, prior.flags);
    result.iterations = 0;
    result.stop_reason = StopReason::kNoImprovement;
    return result;
  }
  graph::Graph adjusted = g;
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    if (resident[static_cast<std::size_t>(v)]) {
      adjusted.mutable_node(v).speedup_score = 0.0;
    }
  }
  return AlternatingOptimize(adjusted, budget, options);
}

Plan WidenStages(const graph::Graph& g, const Plan& plan,
                 std::int64_t budget) {
  // DecomposeStages validates the order and lists each stage by original
  // order position, so concatenating the stages is exactly the stable
  // stage-major reorder. Stage assignment is depth-based and therefore
  // identical before and after.
  const StageDecomposition stages = DecomposeStages(g, plan.order);
  std::vector<graph::NodeId> sequence;
  sequence.reserve(plan.order.sequence.size());
  for (const auto& stage : stages.stages) {
    sequence.insert(sequence.end(), stage.begin(), stage.end());
  }
  if (sequence == plan.order.sequence) return plan;
  Plan widened;
  widened.order = graph::Order::FromSequence(std::move(sequence));
  widened.flags = plan.flags;
  // Memory gate: stage-major interleaving can keep flagged outputs of
  // sibling branches resident simultaneously. Accept the wider order
  // only while it fits the catalog (or, without a budget, only when the
  // peak is untouched).
  const std::int64_t gate =
      budget >= 0 ? std::max(budget,
                             PeakMemoryUsage(g, plan.order, plan.flags))
                  : PeakMemoryUsage(g, plan.order, plan.flags);
  if (PeakMemoryUsage(g, widened.order, widened.flags) > gate) {
    return plan;
  }
  return widened;
}

Plan WidenStagesPrefix(const graph::Graph& g, const Plan& plan,
                       std::int64_t budget) {
  const StageDecomposition stages = DecomposeStages(g, plan.order);
  const std::int64_t gate =
      budget >= 0 ? std::max(budget,
                             PeakMemoryUsage(g, plan.order, plan.flags))
                  : PeakMemoryUsage(g, plan.order, plan.flags);
  // Stage-major listing of the first k stages, original relative order
  // for the rest. Topological either way: prefix nodes only move earlier
  // (their parents sit in even earlier stages of the same prefix), and
  // the suffix preserves the original pairwise order.
  const std::vector<graph::NodeId>& original = plan.order.sequence;
  auto widen_k = [&](std::size_t k) {
    std::vector<graph::NodeId> sequence;
    sequence.reserve(original.size());
    for (std::size_t i = 0; i < k; ++i) {
      sequence.insert(sequence.end(), stages.stages[i].begin(),
                      stages.stages[i].end());
    }
    for (const graph::NodeId v : original) {
      if (static_cast<std::size_t>(stages.stage_of[v]) >= k) {
        sequence.push_back(v);
      }
    }
    return sequence;
  };
  // Greedy: the longest feasible widened prefix wins.
  std::vector<graph::NodeId> previous;
  for (std::size_t k = stages.stages.size(); k > 0; --k) {
    std::vector<graph::NodeId> sequence = widen_k(k);
    // Once the k-prefix reorder is a no-op, every shorter prefix is too.
    if (sequence == original) return plan;
    // Identical to the (k+1)-prefix sequence ⇒ identical (rejected) peak.
    if (sequence == previous) continue;
    Plan widened;
    widened.order = graph::Order::FromSequence(std::move(sequence));
    widened.flags = plan.flags;
    if (PeakMemoryUsage(g, widened.order, widened.flags) <= gate) {
      return widened;
    }
    previous = std::move(widened.order.sequence);
  }
  return plan;
}

bool ValidatePlan(const graph::Graph& g, const Plan& plan,
                  std::int64_t budget, std::string* error) {
  auto fail = [&](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return false;
  };
  if (plan.flags.size() != static_cast<std::size_t>(g.num_nodes())) {
    return fail("flag set size does not match graph");
  }
  if (!graph::IsTopologicalOrder(g, plan.order)) {
    return fail("execution order is not a valid topological order");
  }
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    if (plan.flags[v] && g.node(v).size_bytes > budget) {
      return fail(StrFormat("flagged node '%s' (%s) exceeds the budget %s",
                            g.node(v).name.c_str(),
                            FormatBytes(g.node(v).size_bytes).c_str(),
                            FormatBytes(budget).c_str()));
    }
  }
  const std::int64_t peak = PeakMemoryUsage(g, plan.order, plan.flags);
  if (peak > budget) {
    return fail(StrFormat("peak memory usage %s exceeds the budget %s",
                          FormatBytes(peak).c_str(),
                          FormatBytes(budget).c_str()));
  }
  return true;
}

std::string ToString(NodeDecision decision) {
  switch (decision) {
    case NodeDecision::kFlagged:
      return "kept in memory";
    case NodeDecision::kOversize:
      return "exceeds Memory Catalog";
    case NodeDecision::kZeroScore:
      return "no speedup from caching";
    case NodeDecision::kBudgetContention:
      return "lost to other nodes";
  }
  return "?";
}

std::vector<NodeExplanation> ExplainPlan(const graph::Graph& g,
                                         const Plan& plan,
                                         std::int64_t budget) {
  std::vector<NodeExplanation> rows;
  rows.reserve(plan.order.sequence.size());
  for (graph::NodeId v : plan.order.sequence) {
    NodeExplanation row;
    row.node = v;
    row.slot = plan.order.position[v];
    row.speedup_score = g.node(v).speedup_score;
    row.size_bytes = g.node(v).size_bytes;
    if (plan.flags[v]) {
      row.decision = NodeDecision::kFlagged;
      row.release_slot = ReleaseSlot(g, plan.order, v);
    } else if (g.node(v).size_bytes > budget) {
      row.decision = NodeDecision::kOversize;
    } else if (g.node(v).speedup_score <= 0.0) {
      row.decision = NodeDecision::kZeroScore;
    } else {
      row.decision = NodeDecision::kBudgetContention;
    }
    rows.push_back(row);
  }
  return rows;
}

std::string FormatExplanation(const graph::Graph& g,
                              const std::vector<NodeExplanation>& rows) {
  TablePrinter table(
      {"#", "MV", "size", "score (s)", "decision", "resident slots"});
  for (const NodeExplanation& row : rows) {
    std::string residency = "-";
    if (row.decision == NodeDecision::kFlagged) {
      residency = StrFormat("%d..%d", row.slot, row.release_slot);
    }
    table.AddRow({std::to_string(row.slot), g.node(row.node).name,
                  FormatBytes(row.size_bytes),
                  StrFormat("%.2f", row.speedup_score),
                  ToString(row.decision), residency});
  }
  return table.ToString();
}

std::string DescribePlan(const graph::Graph& g, const Plan& plan) {
  std::ostringstream out;
  out << "execution order:";
  for (graph::NodeId v : plan.order.sequence) {
    out << ' ' << g.node(v).name;
    if (plan.flags[v]) out << "*";
  }
  out << "\nflagged (*) nodes kept in Memory Catalog: "
      << FlaggedNodes(plan.flags).size() << " of " << g.num_nodes();
  out << "\ntotal speedup score: " << TotalScore(g, plan.flags) << " s";
  out << "\npeak memory: "
      << FormatBytes(PeakMemoryUsage(g, plan.order, plan.flags));
  out << "\naverage memory: "
      << FormatBytes(static_cast<std::int64_t>(
             AverageMemoryUsage(g, plan.order, plan.flags)));
  out << '\n';
  return out.str();
}

}  // namespace sc::opt
