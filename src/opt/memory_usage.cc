#include "opt/memory_usage.h"

#include <algorithm>
#include <cassert>

namespace sc::opt {

std::vector<graph::NodeId> FlaggedNodes(const FlagSet& flags) {
  std::vector<graph::NodeId> out;
  for (std::size_t i = 0; i < flags.size(); ++i) {
    if (flags[i]) out.push_back(static_cast<graph::NodeId>(i));
  }
  return out;
}

FlagSet MakeFlags(std::int32_t n, const std::vector<graph::NodeId>& nodes) {
  FlagSet flags(n, false);
  for (graph::NodeId v : nodes) {
    if (v >= 0 && v < n) flags[v] = true;
  }
  return flags;
}

double TotalScore(const graph::Graph& g, const FlagSet& flags) {
  double total = 0;
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    if (flags[v]) total += g.node(v).speedup_score;
  }
  return total;
}

std::int64_t TotalFlaggedSize(const graph::Graph& g, const FlagSet& flags) {
  std::int64_t total = 0;
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    if (flags[v]) total += g.node(v).size_bytes;
  }
  return total;
}

std::int32_t ReleaseSlot(const graph::Graph& g, const graph::Order& order,
                         graph::NodeId v) {
  std::int32_t slot = order.position[v];
  for (graph::NodeId c : g.children(v)) {
    slot = std::max(slot, order.position[c]);
  }
  return slot;
}

std::vector<std::int64_t> MemoryTimeline(const graph::Graph& g,
                                         const graph::Order& order,
                                         const FlagSet& flags) {
  const std::int32_t n = g.num_nodes();
  assert(order.sequence.size() == static_cast<std::size_t>(n));
  // Difference array over slots: +size at position(v), -size after
  // release_slot(v).
  std::vector<std::int64_t> delta(static_cast<std::size_t>(n) + 1, 0);
  for (graph::NodeId v = 0; v < n; ++v) {
    if (!flags[v]) continue;
    const std::int64_t size = g.node(v).size_bytes;
    delta[order.position[v]] += size;
    delta[ReleaseSlot(g, order, v) + 1] -= size;
  }
  std::vector<std::int64_t> timeline(n, 0);
  std::int64_t running = 0;
  for (std::int32_t k = 0; k < n; ++k) {
    running += delta[k];
    timeline[k] = running;
  }
  return timeline;
}

std::int64_t PeakMemoryUsage(const graph::Graph& g, const graph::Order& order,
                             const FlagSet& flags) {
  std::int64_t peak = 0;
  for (std::int64_t usage : MemoryTimeline(g, order, flags)) {
    peak = std::max(peak, usage);
  }
  return peak;
}

double AverageMemoryUsage(const graph::Graph& g, const graph::Order& order,
                          const FlagSet& flags) {
  const std::int32_t n = g.num_nodes();
  if (n == 0) return 0.0;
  double total = 0;
  for (graph::NodeId v = 0; v < n; ++v) {
    if (!flags[v]) continue;
    const double span =
        static_cast<double>(ReleaseSlot(g, order, v) - order.position[v]);
    total += span * static_cast<double>(g.node(v).size_bytes);
  }
  return total / static_cast<double>(n);
}

bool IsFeasible(const graph::Graph& g, const graph::Order& order,
                const FlagSet& flags, std::int64_t budget) {
  return PeakMemoryUsage(g, order, flags) <= budget;
}

}  // namespace sc::opt
