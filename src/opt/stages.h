#ifndef SC_OPT_STAGES_H_
#define SC_OPT_STAGES_H_

#include <string>

#include "cost/cost_model.h"
#include "opt/types.h"

namespace sc::opt {

/// Converts a total execution order (MA-DFS output, or any topological
/// order) into its antichain stage decomposition: stage(v) = 0 for roots,
/// otherwise 1 + max stage over v's DAG parents. `order` must be a valid
/// topological order of `g` (ValidatePlan enforces this upstream); it
/// determines the intra-stage listing (dispatch priority), not the stage
/// assignment itself, so the decomposition of any two topological orders
/// differs only in intra-stage ordering.
StageDecomposition DecomposeStages(const graph::Graph& g,
                                   const graph::Order& order);

/// Width of the widest antichain stage of `order`, without materializing
/// the per-stage node lists (cheap upper bound on useful intra-job
/// parallelism, used for lane leasing).
std::size_t StageWidth(const graph::Graph& g, const graph::Order& order);

/// One line per stage ("stage 3 [width 4]: a b c d") for debugging.
std::string DescribeStages(const graph::Graph& g,
                           const StageDecomposition& stages);

/// Per-node wall-cost estimates feeding the runtime's inline-dispatch
/// decision: seconds[v] = compute_seconds + (when `charge_io`) the
/// modeled read of v's inputs (base bytes + parent output sizes) and —
/// for unflagged nodes, whose write blocks the lane — the modeled output
/// write. `charge_io` is false when storage runs at native speed (no
/// throttle emulation), where only compute occupies the lane
/// meaningfully. Nodes without execution metadata (never profiled)
/// estimate to +infinity: with unknown cost the runtime must assume the
/// node is large and keep it on a lane.
std::vector<double> EstimateNodeSeconds(const graph::Graph& g,
                                        const FlagSet& flags,
                                        const cost::CostModel& model,
                                        bool charge_io);

/// Interior morsel budget for one node: how many morsels its operators
/// may fan out into so each morsel lands near `target_seconds` of work.
/// ceil(est_seconds / target_seconds), clamped to [1, max_morsels].
/// Unprofiled nodes (est = +infinity) get the full budget — with unknown
/// cost the runtime assumes the node is large and lets the engine's
/// per-operator row floor make the final call at execution time. A
/// non-positive target disables morsels (returns 1).
int MorselBudget(double est_seconds, double target_seconds,
                 int max_morsels);

}  // namespace sc::opt

#endif  // SC_OPT_STAGES_H_
