#ifndef SC_OPT_OPTIMIZER_H_
#define SC_OPT_OPTIMIZER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "cost/speedup.h"
#include "opt/alternating.h"
#include "opt/types.h"

namespace sc::opt {

/// High-level facade mirroring the S/C Optimizer component (paper §III-B):
/// given a dependency graph with execution metadata, produces the refresh
/// plan (execution order + nodes to keep in the Memory Catalog) consumed by
/// the Controller / simulator.
class Optimizer {
 public:
  explicit Optimizer(AlternatingOptions options = {})
      : options_(std::move(options)) {}

  /// Runs S/C Opt on `g` with Memory Catalog size `budget`. Speedup scores
  /// must already be present on the graph (either observed or annotated via
  /// cost::SpeedupEstimator).
  AlternatingResult Optimize(const graph::Graph& g,
                             std::int64_t budget) const;

  /// Convenience: annotates scores from `estimator` first, then optimizes.
  AlternatingResult OptimizeWithEstimator(
      graph::Graph* g, std::int64_t budget,
      const cost::SpeedupEstimator& estimator) const;

  const AlternatingOptions& options() const { return options_; }

 private:
  AlternatingOptions options_;
};

/// Re-optimization entry point for the Refresh Service: when the
/// BudgetBroker funds a job below the budget its plan was built for, the
/// flagged set may no longer fit. Returns `prior` unchanged (iterations ==
/// 0) when it is still feasible at `budget`; otherwise re-runs the
/// alternating optimization at the granted budget.
AlternatingResult ReOptimizeAtBudget(const graph::Graph& g,
                                     const Plan& prior, std::int64_t budget,
                                     const AlternatingOptions& options = {});

/// Sharing-aware pre-pass for cross-job catalog sharing: `resident[v]`
/// marks nodes whose outputs are already resident in the service's
/// SharedCatalog (published by a concurrent or recent job refreshing the
/// same content). A resident node yields no extra speedup from flagging —
/// the runtime reuses its output at memory speed regardless, and its
/// children scan it from memory, not disk — so its speedup score is
/// re-costed to zero and the alternating optimization re-runs, steering
/// the knapsack budget to nodes that are *not* yet shared. Returns
/// `prior` unchanged (iterations == 0) when no positive-score node is
/// resident or `resident` does not match the graph; the adjustment is
/// then a no-op by construction.
AlternatingResult ReOptimizeWithResidency(
    const graph::Graph& g, const Plan& prior, std::int64_t budget,
    const std::vector<bool>& resident,
    const AlternatingOptions& options = {});

/// Stage-aware ordering post-pass for the parallel runtime. MA-DFS
/// minimizes memory for a sequential walk, which lists each branch
/// depth-first — so under the runtime's in-order publish protocol, an
/// early-completed node of a later branch waits for the whole earlier
/// branch to publish before its children may dispatch, starving early
/// antichains. WidenStages reorders the total order *stage-major*: nodes
/// are listed by antichain stage (which is order-independent — a node's
/// stage is its DAG depth), and by the original order position within a
/// stage, which front-loads every stage's full width and publishes
/// cross-branch siblings as early as possible.
///
/// The pass is memory-gated: the reordering is kept only if the plan's
/// peak Memory-Catalog usage under the flag set stays within `budget` —
/// interleaving flagged branches keeps more sibling outputs resident
/// simultaneously, so the widened peak may exceed the MA-DFS peak, but
/// never the catalog size. With `budget` < 0 (default) the gate is
/// strict memory equivalence: the reordering must not raise the peak at
/// all. On rejection the original plan is returned unchanged. Flags are
/// never modified. Throws std::invalid_argument if the order is not a
/// topological order covering the graph.
Plan WidenStages(const graph::Graph& g, const Plan& plan,
                 std::int64_t budget = -1);

/// Greedy-prefix variant of WidenStages: instead of the all-or-nothing
/// gate, widens as many *leading* stages as the memory gate allows — the
/// first k stages are listed stage-major, the rest keep the original
/// relative order — choosing the largest feasible k. Early antichains are
/// where lane starvation hurts most (the run's tail drains anyway), so a
/// feasible prefix captures most of the full reorder's win when the full
/// reorder would overshoot the budget. k == num_stages reproduces
/// WidenStages; k == 0 returns the plan unchanged. Gate semantics match
/// WidenStages (budget < 0 ⇒ strict peak equivalence).
Plan WidenStagesPrefix(const graph::Graph& g, const Plan& plan,
                       std::int64_t budget = -1);

/// Independent plan verifier used by tests and the Controller: checks that
/// the order is a valid topological order, that no flagged node is oversize
/// or zero-score-excluded, and that peak memory stays within `budget`.
/// Returns true on success; otherwise fills `error`.
bool ValidatePlan(const graph::Graph& g, const Plan& plan,
                  std::int64_t budget, std::string* error);

/// Human-readable plan summary (order, flagged set, peak/average memory).
std::string DescribePlan(const graph::Graph& g, const Plan& plan);

/// Why a node ended up flagged or not in a given plan.
enum class NodeDecision {
  kFlagged,          // kept in the Memory Catalog
  kOversize,         // size exceeds the Memory Catalog (V_exclude)
  kZeroScore,        // no speedup from keeping it (V_exclude)
  kBudgetContention, // eligible, but the knapsack chose other nodes
};

std::string ToString(NodeDecision decision);

/// Per-node explanation of a plan: decision, slot, and residency span.
struct NodeExplanation {
  graph::NodeId node = graph::kInvalidNode;
  NodeDecision decision = NodeDecision::kBudgetContention;
  std::int32_t slot = -1;          // execution position under plan.order
  std::int32_t release_slot = -1;  // last slot the output stays resident
  double speedup_score = 0.0;
  std::int64_t size_bytes = 0;
};

/// Explains every node of `plan` (ordered by execution slot). The
/// explanation is derived, not stored: it can be produced for any plan,
/// including baseline plans.
std::vector<NodeExplanation> ExplainPlan(const graph::Graph& g,
                                         const Plan& plan,
                                         std::int64_t budget);

/// Renders ExplainPlan as an aligned table for operators.
std::string FormatExplanation(const graph::Graph& g,
                              const std::vector<NodeExplanation>& rows);

}  // namespace sc::opt

#endif  // SC_OPT_OPTIMIZER_H_
