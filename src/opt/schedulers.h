#ifndef SC_OPT_SCHEDULERS_H_
#define SC_OPT_SCHEDULERS_H_

#include <cstdint>
#include <string>

#include "opt/types.h"

namespace sc::opt {

/// Baseline schedulers for S/C Opt-Order (paper §VI-A): alternatives to
/// MA-DFS evaluated in the ablation study (§VI-F, Figures 12-13).

enum class SchedulerMethod {
  kMaDfs,      // Memory-aware DFS (ours, §V-B).
  kSimAnneal,  // Hill climbing with random feasible swaps [64].
  kSeparator,  // Recursive divide-and-conquer via graph cuts [70, 71].
  kRandomDfs,  // DFS with random tie-breaking.
  kKahn,       // Plain topological order (no reordering).
};

std::string ToString(SchedulerMethod method);

struct SimAnnealOptions {
  std::int32_t iterations = 10'000;  // Paper §VI-A sets 10,000.
  double initial_temperature = 1.0;
  std::uint64_t seed = 42;
  /// Memory Catalog size: swaps that push peak usage beyond the budget are
  /// rejected (the subproblem inherits the S/C Opt constraint). Defaults to
  /// unlimited.
  std::int64_t budget = INT64_MAX;
};

/// Simulated annealing over execution orders: starting from `initial`,
/// repeatedly picks two swappable nodes (the swap must keep the order
/// topological), performs the swap if it lowers the average memory usage of
/// the flagged set, and otherwise still performs it with a temperature-
/// decayed probability to escape local minima.
graph::Order SimulatedAnnealingOrder(const graph::Graph& g,
                                     const FlagSet& flags,
                                     const graph::Order& initial,
                                     const SimAnnealOptions& options = {});

/// Separator-based divide and conquer: recursively splits the node set into
/// a precedence-closed "front" half and "back" half, choosing the cut that
/// minimizes the flagged bytes crossing it, then recurses into both halves.
/// An approximation of the linear-arrangement separator algorithms the
/// paper cites ([70], [71]); cuts are drawn from prefixes of a base
/// topological order.
graph::Order SeparatorOrder(const graph::Graph& g, const FlagSet& flags);

/// Dispatch helper used by the alternating optimizer's ablation mode.
/// `budget` is forwarded to schedulers that honour the memory constraint.
graph::Order ScheduleOrder(SchedulerMethod method, const graph::Graph& g,
                           const FlagSet& flags, const graph::Order& current,
                           std::uint64_t seed, std::int64_t budget);

}  // namespace sc::opt

#endif  // SC_OPT_SCHEDULERS_H_
