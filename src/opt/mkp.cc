#include "opt/mkp.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace sc::opt {

namespace {

/// Shared solver state for the branch-and-bound recursion.
class BnbSolver {
 public:
  BnbSolver(const MkpProblem& problem, const MkpOptions& options)
      : problem_(problem), options_(options) {
    const std::int32_t n = static_cast<std::int32_t>(problem.profits.size());
    // Order items by profit density (descending); ties by smaller weight.
    order_.resize(n);
    std::iota(order_.begin(), order_.end(), 0);
    std::sort(order_.begin(), order_.end(), [&](std::int32_t a,
                                                std::int32_t b) {
      const double da = Density(a);
      const double db = Density(b);
      if (da != db) return da > db;
      return problem.weights[a] < problem.weights[b];
    });
    // Per-item constraint membership.
    item_constraints_.resize(n);
    for (std::size_t c = 0; c < problem.members.size(); ++c) {
      for (std::int32_t item : problem.members[c]) {
        item_constraints_[item].push_back(static_cast<std::int32_t>(c));
      }
    }
    // Per-constraint membership bitmap for the bound computation.
    in_constraint_.assign(problem.members.size(),
                          std::vector<bool>(n, false));
    for (std::size_t c = 0; c < problem.members.size(); ++c) {
      for (std::int32_t item : problem.members[c]) {
        in_constraint_[c][item] = true;
      }
    }
    remaining_.assign(problem.members.size(), problem.capacity);
    chosen_.assign(n, false);
    // Suffix profit sums in density order: suffix_profit_[k] = sum of
    // profits of order_[k..].
    suffix_profit_.assign(n + 1, 0.0);
    for (std::int32_t k = n - 1; k >= 0; --k) {
      suffix_profit_[k] = suffix_profit_[k + 1] + problem.profits[order_[k]];
    }
  }

  MkpResult Solve() {
    // Seed the incumbent with the greedy solution so pruning bites early.
    MkpResult greedy = SolveMkpGreedy(problem_);
    best_ = greedy.selected;
    best_objective_ = greedy.objective;
    aborted_ = false;
    Recurse(0, 0.0);
    MkpResult result;
    result.selected = best_;
    result.objective = best_objective_;
    result.optimal = !aborted_;
    result.nodes_explored = nodes_;
    return result;
  }

 private:
  double Density(std::int32_t item) const {
    const double w = static_cast<double>(problem_.weights[item]);
    return w > 0 ? problem_.profits[item] / w : problem_.profits[item] * 1e12;
  }

  /// Admissible upper bound on the profit obtainable from items
  /// order_[k..] given current residual capacities: for every constraint c,
  /// profit(remaining items in c) is at most the fractional knapsack bound
  /// under remaining_[c], and remaining items outside c contribute at most
  /// their full profit. The minimum over constraints is a valid bound.
  double UpperBound(std::int32_t k) const {
    const std::int32_t n = static_cast<std::int32_t>(order_.size());
    double bound = suffix_profit_[k];
    // Evaluate only the tightest few constraints (smallest residual
    // capacity): each constraint alone yields an admissible bound, so
    // skipping some merely loosens the bound.
    const std::size_t num_constraints = problem_.members.size();
    const std::size_t limit =
        options_.bound_constraints > 0
            ? static_cast<std::size_t>(options_.bound_constraints)
            : num_constraints;
    scratch_.resize(num_constraints);
    for (std::size_t c = 0; c < num_constraints; ++c) scratch_[c] = c;
    if (limit < num_constraints) {
      std::partial_sort(scratch_.begin(),
                        scratch_.begin() +
                            static_cast<std::ptrdiff_t>(limit),
                        scratch_.end(),
                        [&](std::size_t a, std::size_t b) {
                          return remaining_[a] < remaining_[b];
                        });
      scratch_.resize(limit);
    }
    for (const std::size_t c : scratch_) {
      double outside = 0.0;
      double inside_frac = 0.0;
      std::int64_t cap = remaining_[c];
      bool cap_full = false;
      for (std::int32_t idx = k; idx < n; ++idx) {
        const std::int32_t item = order_[idx];
        if (!in_constraint_[c][item]) {
          outside += problem_.profits[item];
          continue;
        }
        if (cap_full) continue;
        const std::int64_t w = problem_.weights[item];
        if (w <= cap) {
          cap -= w;
          inside_frac += problem_.profits[item];
        } else {
          if (cap > 0 && w > 0) {
            inside_frac += problem_.profits[item] * static_cast<double>(cap) /
                           static_cast<double>(w);
          }
          cap_full = true;  // Items are density-sorted: bound is tight here.
        }
      }
      bound = std::min(bound, outside + inside_frac);
    }
    return bound;
  }

  bool Fits(std::int32_t item) const {
    for (std::int32_t c : item_constraints_[item]) {
      if (problem_.weights[item] > remaining_[c]) return false;
    }
    return true;
  }

  void Take(std::int32_t item) {
    for (std::int32_t c : item_constraints_[item]) {
      remaining_[c] -= problem_.weights[item];
    }
    chosen_[item] = true;
  }

  void Untake(std::int32_t item) {
    for (std::int32_t c : item_constraints_[item]) {
      remaining_[c] += problem_.weights[item];
    }
    chosen_[item] = false;
  }

  void Recurse(std::int32_t k, double profit) {
    if (aborted_) return;
    ++nodes_;
    if (options_.node_limit > 0 && nodes_ > options_.node_limit) {
      aborted_ = true;
      return;
    }
    const std::int32_t n = static_cast<std::int32_t>(order_.size());
    if (profit > best_objective_) {
      best_objective_ = profit;
      best_ = chosen_;
    }
    if (k >= n) return;
    if (profit + UpperBound(k) <= best_objective_ + kEps) return;
    const std::int32_t item = order_[k];
    // Branch "take" first (density order makes it the promising branch).
    if (Fits(item)) {
      Take(item);
      Recurse(k + 1, profit + problem_.profits[item]);
      Untake(item);
    }
    Recurse(k + 1, profit);
  }

  static constexpr double kEps = 1e-9;

  const MkpProblem& problem_;
  const MkpOptions& options_;
  std::vector<std::int32_t> order_;
  std::vector<std::vector<std::int32_t>> item_constraints_;
  std::vector<std::vector<bool>> in_constraint_;
  std::vector<std::int64_t> remaining_;
  std::vector<bool> chosen_;
  std::vector<double> suffix_profit_;
  std::vector<bool> best_;
  double best_objective_ = 0.0;
  std::int64_t nodes_ = 0;
  bool aborted_ = false;
  mutable std::vector<std::size_t> scratch_;
};

bool Feasible(const MkpProblem& problem, const std::vector<bool>& selected) {
  for (const auto& members : problem.members) {
    std::int64_t used = 0;
    for (std::int32_t item : members) {
      if (selected[item]) used += problem.weights[item];
    }
    if (used > problem.capacity) return false;
  }
  return true;
}

}  // namespace

MkpResult SolveMkpBranchAndBound(const MkpProblem& problem,
                                 const MkpOptions& options) {
  if (problem.profits.empty()) {
    return MkpResult{.selected = {}, .objective = 0.0, .optimal = true};
  }
  BnbSolver solver(problem, options);
  return solver.Solve();
}

MkpResult SolveMkpBruteForce(const MkpProblem& problem) {
  const std::size_t n = problem.profits.size();
  assert(n <= 30 && "brute force is exponential; use for tests only");
  MkpResult best;
  best.selected.assign(n, false);
  best.objective = 0.0;
  std::vector<bool> current(n, false);
  for (std::uint64_t mask = 0; mask < (1ull << n); ++mask) {
    double profit = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      current[i] = (mask >> i) & 1;
      if (current[i]) profit += problem.profits[i];
    }
    if (profit > best.objective && Feasible(problem, current)) {
      best.objective = profit;
      best.selected = current;
    }
    best.nodes_explored++;
  }
  return best;
}

MkpResult SolveMkpGreedy(const MkpProblem& problem) {
  const std::size_t n = problem.profits.size();
  std::vector<std::int32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::int32_t a, std::int32_t b) {
    const double wa = static_cast<double>(std::max<std::int64_t>(
        problem.weights[a], 1));
    const double wb = static_cast<double>(std::max<std::int64_t>(
        problem.weights[b], 1));
    return problem.profits[a] / wa > problem.profits[b] / wb;
  });
  std::vector<std::int64_t> remaining(problem.members.size(),
                                      problem.capacity);
  std::vector<std::vector<std::int32_t>> item_constraints(n);
  for (std::size_t c = 0; c < problem.members.size(); ++c) {
    for (std::int32_t item : problem.members[c]) {
      item_constraints[item].push_back(static_cast<std::int32_t>(c));
    }
  }
  MkpResult result;
  result.selected.assign(n, false);
  for (std::int32_t item : order) {
    bool fits = true;
    for (std::int32_t c : item_constraints[item]) {
      if (problem.weights[item] > remaining[c]) {
        fits = false;
        break;
      }
    }
    if (!fits) continue;
    for (std::int32_t c : item_constraints[item]) {
      remaining[c] -= problem.weights[item];
    }
    result.selected[item] = true;
    result.objective += problem.profits[item];
  }
  result.optimal = false;
  return result;
}

MkpProblem BuildMkpProblem(const graph::Graph& g, const ConstraintSets& cs,
                           std::int64_t budget) {
  MkpProblem problem;
  problem.capacity = budget;
  // Map graph node ids -> dense item indices.
  std::vector<std::int32_t> item_of(g.num_nodes(), -1);
  for (graph::NodeId v : cs.mkp_nodes) {
    item_of[v] = static_cast<std::int32_t>(problem.profits.size());
    problem.profits.push_back(g.node(v).speedup_score);
    problem.weights.push_back(g.node(v).size_bytes);
  }
  for (const auto& s : cs.sets) {
    std::vector<std::int32_t> members;
    members.reserve(s.size());
    for (graph::NodeId v : s) {
      assert(item_of[v] >= 0);
      members.push_back(item_of[v]);
    }
    problem.members.push_back(std::move(members));
  }
  return problem;
}

FlagSet SimplifiedMkp(const graph::Graph& g, const graph::Order& order,
                      std::int64_t budget, const MkpOptions& options) {
  const ConstraintSets cs = GetConstraints(g, order, budget);
  const MkpProblem problem = BuildMkpProblem(g, cs, budget);
  const MkpResult result = SolveMkpBranchAndBound(problem, options);
  FlagSet flags = EmptyFlags(g.num_nodes());
  for (std::size_t i = 0; i < cs.mkp_nodes.size(); ++i) {
    if (result.selected[i]) flags[cs.mkp_nodes[i]] = true;
  }
  // Algorithm 1 line 9: candidates outside every constraint set are
  // trivially safe to flag.
  for (graph::NodeId v : cs.free_nodes) flags[v] = true;
  return flags;
}

}  // namespace sc::opt
