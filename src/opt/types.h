#ifndef SC_OPT_TYPES_H_
#define SC_OPT_TYPES_H_

#include <vector>

#include "graph/graph.h"
#include "graph/topo.h"

namespace sc::opt {

/// The set U of flagged nodes (paper Table II): flags[v] == true means the
/// output of node v is kept in the Memory Catalog after v executes.
using FlagSet = std::vector<bool>;

/// An empty flag set for a graph of `n` nodes.
inline FlagSet EmptyFlags(std::int32_t n) { return FlagSet(n, false); }

/// Converts a FlagSet to the sorted list of flagged node ids.
std::vector<graph::NodeId> FlaggedNodes(const FlagSet& flags);

/// Builds a FlagSet from a list of node ids.
FlagSet MakeFlags(std::int32_t n, const std::vector<graph::NodeId>& nodes);

/// Total speedup score of the flagged nodes — the S/C Opt objective.
double TotalScore(const graph::Graph& g, const FlagSet& flags);

/// Total size of the flagged nodes (used by the paper's size-based
/// convergence criterion, Algorithm 2 line 5).
std::int64_t TotalFlaggedSize(const graph::Graph& g, const FlagSet& flags);

/// The output of the optimizer: an execution order plus the flagged set.
struct Plan {
  graph::Order order;
  FlagSet flags;
};

/// Antichain stage metadata derived from an execution order, consumed by
/// the intra-job parallel runtime: stage k holds nodes whose DAG
/// predecessors all sit in stages < k, so every node of one stage may
/// execute concurrently without violating a dependency. Within a stage,
/// nodes are listed by their position in the originating order, which is
/// the dispatch priority the runtime uses when lanes are scarce.
struct StageDecomposition {
  /// stages[k] = node ids of stage k, ordered by order position.
  std::vector<std::vector<graph::NodeId>> stages;
  /// stage_of[v] = index of the stage containing node v.
  std::vector<std::int32_t> stage_of;

  std::int32_t num_stages() const {
    return static_cast<std::int32_t>(stages.size());
  }
  /// Widest antichain — an upper bound on useful intra-job parallelism.
  std::size_t width() const;
};

}  // namespace sc::opt

#endif  // SC_OPT_TYPES_H_
