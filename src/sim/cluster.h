#ifndef SC_SIM_CLUSTER_H_
#define SC_SIM_CLUSTER_H_

#include <cstdint>

#include "sim/refresh_sim.h"

namespace sc::sim {

/// Cluster scaling model (paper §VI-G, Table V): with `workers` DBMS
/// workers, compute throughput scales linearly while the shared-storage
/// I/O path scales sub-linearly (stragglers, shuffle, and metadata costs
/// on the shared NFS). The paper's observation — total runtime drops with
/// each added worker while S/C's relative speedup stays flat — emerges
/// from scaling both sides.
struct ClusterModel {
  /// Fraction of ideal linear I/O scaling retained per extra worker.
  double io_scaling_efficiency = 0.75;

  /// Derives per-run simulator options for an N-worker cluster.
  SimOptions Scale(const SimOptions& single_node, std::int32_t workers) const;
};

}  // namespace sc::sim

#endif  // SC_SIM_CLUSTER_H_
