#ifndef SC_SIM_DEVICE_H_
#define SC_SIM_DEVICE_H_

namespace sc::sim {

/// A FIFO-serialized device channel (e.g. the storage write path): work
/// submitted while the channel is busy queues behind in-flight transfers.
/// Time is simulated seconds.
class FifoChannel {
 public:
  /// Submits `duration` seconds of work at time `now`; returns the
  /// completion time (start is max(now, previous completion)).
  double Submit(double now, double duration);

  /// Completion time of the last submitted work (0 if idle from start).
  double free_at() const { return free_at_; }

  /// Seconds a submission at `now` would wait before starting.
  double QueueDelay(double now) const;

  void Reset() { free_at_ = 0.0; }

 private:
  double free_at_ = 0.0;
};

}  // namespace sc::sim

#endif  // SC_SIM_DEVICE_H_
