#include "sim/device.h"

#include <algorithm>

namespace sc::sim {

double FifoChannel::Submit(double now, double duration) {
  const double start = std::max(now, free_at_);
  free_at_ = start + duration;
  return free_at_;
}

double FifoChannel::QueueDelay(double now) const {
  return std::max(0.0, free_at_ - now);
}

}  // namespace sc::sim
