#ifndef SC_SIM_LRU_CACHE_H_
#define SC_SIM_LRU_CACHE_H_

#include <cstdint>
#include <list>
#include <unordered_map>

#include "opt/types.h"
#include "sim/refresh_sim.h"

namespace sc::sim {

/// Byte-budgeted LRU cache over integer keys, used to model the DBMS-side
/// query-result cache the paper compares against (§VI-A: "The LRU cache in
/// the DBMS caches query results; we increase the size of the LRU cache by
/// an amount equal to the size of Memory Catalog").
class LruCache {
 public:
  explicit LruCache(std::int64_t capacity_bytes);

  /// Returns true and refreshes recency if `key` is cached.
  bool Lookup(std::int64_t key);

  /// Inserts `key` with `size` bytes, evicting least-recently-used entries
  /// as needed. Entries larger than the capacity are not cached.
  void Insert(std::int64_t key, std::int64_t size);

  bool Contains(std::int64_t key) const;
  std::int64_t used_bytes() const { return used_; }
  std::int64_t capacity_bytes() const { return capacity_; }
  std::size_t size() const { return entries_.size(); }

 private:
  void Evict(std::int64_t needed);

  std::int64_t capacity_;
  std::int64_t used_ = 0;
  /// Front = most recently used.
  std::list<std::int64_t> order_;
  struct Entry {
    std::int64_t size;
    std::list<std::int64_t>::iterator it;
  };
  std::unordered_map<std::int64_t, Entry> entries_;
};

/// Simulates the LRU-cache baseline: nodes run in plain topological order,
/// all writes block, but table reads hit an LRU result cache of
/// `cache_bytes`. Outputs are inserted into the cache after each write.
RunResult SimulateLruBaseline(const graph::Graph& g, std::int64_t cache_bytes,
                              const SimOptions& options);

}  // namespace sc::sim

#endif  // SC_SIM_LRU_CACHE_H_
