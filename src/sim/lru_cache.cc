#include "sim/lru_cache.h"

#include <algorithm>
#include <cassert>

#include "cost/cost_model.h"

namespace sc::sim {

LruCache::LruCache(std::int64_t capacity_bytes)
    : capacity_(std::max<std::int64_t>(capacity_bytes, 0)) {}

bool LruCache::Lookup(std::int64_t key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return false;
  order_.erase(it->second.it);
  order_.push_front(key);
  it->second.it = order_.begin();
  return true;
}

bool LruCache::Contains(std::int64_t key) const {
  return entries_.count(key) > 0;
}

void LruCache::Insert(std::int64_t key, std::int64_t size) {
  if (size > capacity_ || size < 0) return;
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    // Refresh: update size and recency.
    used_ -= it->second.size;
    order_.erase(it->second.it);
    entries_.erase(it);
  }
  Evict(size);
  order_.push_front(key);
  entries_.emplace(key, Entry{size, order_.begin()});
  used_ += size;
}

void LruCache::Evict(std::int64_t needed) {
  while (used_ + needed > capacity_ && !order_.empty()) {
    const std::int64_t victim = order_.back();
    order_.pop_back();
    auto it = entries_.find(victim);
    assert(it != entries_.end());
    used_ -= it->second.size;
    entries_.erase(it);
  }
}

RunResult SimulateLruBaseline(const graph::Graph& g, std::int64_t cache_bytes,
                              const SimOptions& options) {
  const cost::CostModel model(options.device);
  const graph::Order order = graph::KahnTopologicalOrder(g);
  LruCache cache(cache_bytes);

  RunResult result;
  result.per_node.resize(g.num_nodes());
  double now = 0.0;
  for (graph::NodeId v : order.sequence) {
    NodeTiming& timing = result.per_node[v];
    timing.start = now;
    double read_seconds = 0.0;
    for (graph::NodeId p : g.parents(v)) {
      const std::int64_t bytes = g.node(p).size_bytes;
      if (cache.Lookup(p)) {
        read_seconds += model.MemReadSeconds(bytes);
      } else {
        read_seconds +=
            model.DiskReadSeconds(bytes, g.node(p).file_count) /
            options.io_scale;
        cache.Insert(p, bytes);
      }
    }
    read_seconds +=
        model.DiskReadSeconds(g.node(v).base_input_bytes,
                              g.node(v).file_count) /
        options.io_scale;
    now += read_seconds;
    timing.read_seconds = read_seconds;

    const double compute_seconds =
        g.node(v).compute_seconds / options.compute_scale;
    now += compute_seconds;
    timing.compute_seconds = compute_seconds;

    // Writes always block (the cache does not short-circuit persistence),
    // but the fresh result lands in the cache for downstream readers.
    const double write_seconds =
        model.DiskWriteSeconds(g.node(v).size_bytes, g.node(v).file_count) /
        options.io_scale;
    now += write_seconds;
    timing.write_seconds = write_seconds;
    cache.Insert(v, g.node(v).size_bytes);

    timing.end = now;
    result.total_read_seconds += read_seconds;
    result.total_compute_seconds += compute_seconds;
    result.total_write_seconds += write_seconds;
  }
  result.makespan = now;
  result.total_query_seconds = result.total_read_seconds +
                               result.total_compute_seconds +
                               result.total_write_seconds;
  return result;
}

}  // namespace sc::sim
