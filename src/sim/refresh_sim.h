#ifndef SC_SIM_REFRESH_SIM_H_
#define SC_SIM_REFRESH_SIM_H_

#include <cstdint>
#include <vector>

#include "cost/cost_model.h"
#include "opt/types.h"

namespace sc::sim {

/// Discrete-event simulator of an MV refresh run under S/C's Controller
/// semantics (paper §III-C):
///
///  - Nodes execute sequentially in the plan's order (the DBMS runs one
///    refresh statement at a time).
///  - Inputs are read from the Memory Catalog when the parent is flagged
///    (children always execute before the parent is released), and from
///    external storage otherwise; base-table inputs always come from disk.
///  - Flagged outputs are created in memory and materialized to storage by
///    a background writer that overlaps downstream execution; unflagged
///    outputs block until the disk write completes.
///  - The storage write channel is a FIFO device: foreground writes queue
///    behind in-flight background materializations (reads use a separate
///    channel, matching the paper's independently measured read/write
///    bandwidths).
///  - The run ends when every node has executed AND every materialization
///    has finished; a flagged node is released at
///    max(last child executed, its materialization done).
struct SimOptions {
  cost::DeviceProfile device;
  /// Memory Catalog size in bytes.
  std::int64_t budget = 0;
  /// If false, flagged outputs are still created in memory but their
  /// materialization blocks (ablation knob; true reproduces S/C).
  bool background_materialize = true;
  /// Compute-time divisor (cluster scaling; 1.0 = single worker).
  double compute_scale = 1.0;
  /// I/O-bandwidth multiplier (cluster scaling; 1.0 = single worker).
  double io_scale = 1.0;
};

/// Per-node timing breakdown.
struct NodeTiming {
  double start = 0.0;           // when the node began executing
  double read_seconds = 0.0;    // table reads (parents + base inputs)
  double compute_seconds = 0.0;
  double write_seconds = 0.0;   // blocking portion of the output write
  double end = 0.0;             // when the node finished (excl. background)
  bool output_in_memory = false;
};

/// Aggregate result of one simulated refresh run.
struct RunResult {
  /// End-to-end wall time: last node executed and all data materialized.
  double makespan = 0.0;
  /// Sums across nodes (the CPU metrics of Table IV).
  double total_read_seconds = 0.0;
  double total_compute_seconds = 0.0;
  double total_write_seconds = 0.0;
  /// "Query latency": read + compute + blocking write per node, summed.
  double total_query_seconds = 0.0;
  /// Peak bytes resident in the Memory Catalog during the run.
  std::int64_t peak_memory = 0;
  /// True if residency (including materialization lag) ever exceeded the
  /// budget; the optimizer guarantees this stays false for valid plans.
  bool exceeded_budget = false;
  std::vector<NodeTiming> per_node;
};

/// Simulates the refresh run for `plan` (order + flagged set).
RunResult SimulateRun(const graph::Graph& g, const opt::Plan& plan,
                      const SimOptions& options);

/// Baseline: serial execution in plain topological order with no Memory
/// Catalog — every input read from disk, every write blocking.
RunResult SimulateNoOpt(const graph::Graph& g, const SimOptions& options);

/// End-to-end speedup of `plan` over the unoptimized baseline.
double SpeedupOverNoOpt(const graph::Graph& g, const opt::Plan& plan,
                        const SimOptions& options);

}  // namespace sc::sim

#endif  // SC_SIM_REFRESH_SIM_H_
