#include "sim/cluster.h"

#include <algorithm>

namespace sc::sim {

SimOptions ClusterModel::Scale(const SimOptions& single_node,
                               std::int32_t workers) const {
  SimOptions scaled = single_node;
  const double n = std::max(1, workers);
  scaled.compute_scale = single_node.compute_scale * n;
  scaled.io_scale =
      single_node.io_scale * (1.0 + io_scaling_efficiency * (n - 1.0));
  return scaled;
}

}  // namespace sc::sim
