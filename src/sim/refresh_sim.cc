#include "sim/refresh_sim.h"

#include <algorithm>
#include <cassert>

#include "opt/memory_usage.h"
#include "sim/device.h"

namespace sc::sim {

namespace {

/// Scaled cost helpers honouring the cluster knobs.
struct ScaledCosts {
  explicit ScaledCosts(const SimOptions& options)
      : model(options.device), options(options) {}

  double DiskRead(std::int64_t bytes, double files) const {
    return model.DiskReadSeconds(bytes, files) / options.io_scale;
  }
  double DiskWriteChannel(std::int64_t bytes) const {
    return model.DiskWriteChannelSeconds(bytes) / options.io_scale;
  }
  double WriteOverhead(std::int64_t bytes, double files) const {
    if (bytes <= 0) return 0.0;
    return model.profile().table_write_overhead * files / options.io_scale;
  }
  double MemRead(std::int64_t bytes) const {
    return model.MemReadSeconds(bytes);
  }
  double MemWrite(std::int64_t bytes) const {
    return model.MemWriteSeconds(bytes);
  }
  double Compute(double seconds) const {
    return seconds / options.compute_scale;
  }

  cost::CostModel model;
  const SimOptions& options;
};

}  // namespace

RunResult SimulateRun(const graph::Graph& g, const opt::Plan& plan,
                      const SimOptions& options) {
  const std::int32_t n = g.num_nodes();
  assert(plan.order.sequence.size() == static_cast<std::size_t>(n));
  const ScaledCosts costs(options);

  RunResult result;
  result.per_node.resize(n);

  // State.
  std::vector<double> materialized_at(n, 0.0);  // disk copy ready time
  std::vector<bool> resident(n, false);         // in Memory Catalog now
  std::vector<std::int32_t> pending_children(n, 0);
  for (graph::NodeId v = 0; v < n; ++v) {
    pending_children[v] = static_cast<std::int32_t>(g.children(v).size());
  }
  double now = 0.0;
  // The storage write channel serializes the bandwidth-bound portion of
  // writes; per-table metadata/commit overheads proceed concurrently.
  FifoChannel write_channel;
  std::int64_t memory_used = 0;

  // Flagged nodes whose dependants have all executed. They are kept
  // resident (lazy release) until memory is needed or the run ends; a
  // release must wait for the node's materialization to complete, so we
  // free the earliest-finishing writes first.
  std::vector<graph::NodeId> releasable;

  auto mark_releasable = [&](graph::NodeId v) {
    if (resident[v]) releasable.push_back(v);
  };

  // Frees releasable entries (waiting on their materialization if it is
  // still in flight) until `needed` bytes fit within the budget.
  auto make_room = [&](std::int64_t needed) {
    while (memory_used + needed > options.budget && !releasable.empty()) {
      std::size_t earliest = 0;
      for (std::size_t i = 1; i < releasable.size(); ++i) {
        if (materialized_at[releasable[i]] <
            materialized_at[releasable[earliest]]) {
          earliest = i;
        }
      }
      const graph::NodeId victim = releasable[earliest];
      releasable[earliest] = releasable.back();
      releasable.pop_back();
      now = std::max(now, materialized_at[victim]);
      resident[victim] = false;
      memory_used -= g.node(victim).size_bytes;
    }
  };

  for (graph::NodeId v : plan.order.sequence) {
    NodeTiming& timing = result.per_node[v];
    timing.start = now;

    // ---- Read phase: parents, then base-table inputs. ----
    double read_seconds = 0.0;
    for (graph::NodeId p : g.parents(v)) {
      const std::int64_t bytes = g.node(p).size_bytes;
      if (resident[p]) {
        read_seconds += costs.MemRead(bytes);
      } else {
        // The parent is on disk: unflagged parents wrote synchronously and
        // flagged parents are only released after materialization.
        read_seconds += costs.DiskRead(bytes, g.node(p).file_count);
      }
    }
    read_seconds +=
        costs.DiskRead(g.node(v).base_input_bytes, g.node(v).file_count);
    now += read_seconds;
    timing.read_seconds = read_seconds;

    // ---- Compute phase. ----
    const double compute_seconds = costs.Compute(g.node(v).compute_seconds);
    now += compute_seconds;
    timing.compute_seconds = compute_seconds;

    // ---- Output phase. ----
    const std::int64_t out_bytes = g.node(v).size_bytes;
    if (plan.flags[v]) {
      // Create in the Memory Catalog, releasing finished entries first.
      make_room(out_bytes);
      const double create_seconds = costs.MemWrite(out_bytes);
      now += create_seconds;
      timing.write_seconds = create_seconds;
      timing.output_in_memory = true;
      resident[v] = true;
      memory_used += out_bytes;
      result.peak_memory = std::max(result.peak_memory, memory_used);
      if (memory_used > options.budget) result.exceeded_budget = true;
      // Materialize through the write channel; overhead overlaps.
      const double channel_done =
          write_channel.Submit(now, costs.DiskWriteChannel(out_bytes));
      if (options.background_materialize) {
        materialized_at[v] = channel_done + costs.WriteOverhead(out_bytes, g.node(v).file_count);
      } else {
        now = channel_done + costs.WriteOverhead(out_bytes, g.node(v).file_count);
        materialized_at[v] = now;
        timing.write_seconds += now - timing.start - read_seconds -
                                compute_seconds - create_seconds;
      }
    } else {
      // Blocking write: queue behind in-flight background writes, then pay
      // the full per-table overhead.
      const double channel_done =
          write_channel.Submit(now, costs.DiskWriteChannel(out_bytes));
      const double done = channel_done + costs.WriteOverhead(out_bytes, g.node(v).file_count);
      timing.write_seconds = done - now;
      now = done;
      materialized_at[v] = now;
    }
    timing.end = now;

    // Mark nodes whose last dependant just executed as releasable.
    if (plan.flags[v] && pending_children[v] == 0) mark_releasable(v);
    for (graph::NodeId p : g.parents(v)) {
      if (--pending_children[p] == 0 && plan.flags[p]) mark_releasable(p);
    }

    result.total_read_seconds += timing.read_seconds;
    result.total_compute_seconds += timing.compute_seconds;
    result.total_write_seconds += timing.write_seconds;
  }

  // Run ends when all nodes executed and every materialization finished.
  double final_write = write_channel.free_at();
  for (graph::NodeId v = 0; v < n; ++v) {
    final_write = std::max(final_write, materialized_at[v]);
  }
  result.makespan = std::max(now, final_write);
  result.total_query_seconds = result.total_read_seconds +
                               result.total_compute_seconds +
                               result.total_write_seconds;
  return result;
}

RunResult SimulateNoOpt(const graph::Graph& g, const SimOptions& options) {
  opt::Plan plan;
  plan.order = graph::KahnTopologicalOrder(g);
  plan.flags = opt::EmptyFlags(g.num_nodes());
  return SimulateRun(g, plan, options);
}

double SpeedupOverNoOpt(const graph::Graph& g, const opt::Plan& plan,
                        const SimOptions& options) {
  const double baseline = SimulateNoOpt(g, options).makespan;
  const double optimized = SimulateRun(g, plan, options).makespan;
  return optimized > 0 ? baseline / optimized : 1.0;
}

}  // namespace sc::sim
