#ifndef SC_OBS_TRACE_H_
#define SC_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace sc::obs {

/// One recorded span or instant. `track` is the logical timeline the
/// event belongs to ("lane-0", "worker-2", "materializer-1"), captured
/// from the emitting thread's registered track name — in Chrome's trace
/// viewer each track renders as one thread row, which is what turns a
/// multi-tenant run into a lane-occupancy timeline.
struct TraceEvent {
  std::string category;  // "node", "job", "budget"… (short: fits SSO)
  std::string name;
  std::string track;
  double start_seconds = 0.0;  // common/clock monotonic seconds
  double dur_seconds = 0.0;    // 0 for instants
  bool instant = false;
  /// Pre-rendered JSON object body (`"job":4,"stage":1` — no braces).
  std::string args_json;
};

struct TraceRecorderOptions {
  /// Ring capacity per emitting thread; the oldest events are dropped
  /// (and counted) once a thread wraps its ring.
  std::size_t per_thread_capacity = 1 << 14;
  bool enabled = true;
};

/// Lock-cheap span/event recorder behind every runtime boundary span
/// (job admission, budget wait, per-node execute/publish, catalog
/// pin/evict, materializer writes). Each emitting thread appends to its
/// own ring buffer guarded by a per-thread mutex that only the export
/// path ever contends on, so concurrent lanes never serialize against
/// each other to record spans.
///
/// The enabled flag is one relaxed atomic: when off, Complete/Instant
/// return before touching any buffer, and callers are expected to guard
/// span-name construction behind enabled() so a disabled recorder costs
/// a load and a branch per boundary — the zero-overhead-when-off
/// contract benchmarked by bench_service_throughput's trace section.
class TraceRecorder {
 public:
  explicit TraceRecorder(TraceRecorderOptions options = {});
  ~TraceRecorder();

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Records a completed span [start, start + dur) on the calling
  /// thread's track. No-op when disabled.
  void Complete(const char* category, std::string name,
                double start_seconds, double dur_seconds,
                std::string args_json = {});

  /// Complete() with an explicit track instead of the calling thread's.
  /// For work whose logical timeline is not the executing thread: the
  /// Materializer's pooled drain task runs on whichever lane picks it
  /// up but its writes belong on the "materializer-<k>" track.
  void CompleteOnTrack(std::string track, const char* category,
                       std::string name, double start_seconds,
                       double dur_seconds, std::string args_json = {});

  /// Records an instant event at now (or `at_seconds` if >= 0).
  void Instant(const char* category, std::string name,
               std::string args_json = {}, double at_seconds = -1.0);

  /// All recorded events, sorted by start time. Safe to call while
  /// other threads keep emitting (their in-flight events may or may not
  /// be included).
  std::vector<TraceEvent> Events() const;

  /// Events overwritten after a thread wrapped its ring.
  std::int64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  std::size_t event_count() const;

 private:
  struct ThreadBuffer {
    std::mutex mutex;
    std::vector<TraceEvent> ring;
    std::size_t next = 0;
    bool wrapped = false;
  };

  ThreadBuffer* BufferForThisThread();
  void Append(TraceEvent event);

  const TraceRecorderOptions options_;
  std::atomic<bool> enabled_;
  std::atomic<std::int64_t> dropped_{0};
  const std::uint64_t id_;  // process-unique; keys the thread-local cache
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
};

/// Names the calling thread's trace track ("lane-3", "worker-0").
/// Threads that never set one record on "thread-<n>". The name is
/// thread-local and recorder-independent: pool lanes name themselves
/// once at spawn, whatever recorder later observes them.
void SetThreadTrack(std::string name);
const std::string& ThreadTrack();

/// Serializes every recorded event as Chrome/Perfetto `trace_event`
/// JSON (one event per line inside "traceEvents"): load the file in
/// chrome://tracing or ui.perfetto.dev to see the run as a per-track
/// timeline. Timestamps are rebased to the earliest event.
void WriteChromeTrace(const TraceRecorder& recorder, std::ostream& out);
void WriteChromeTrace(const std::vector<TraceEvent>& events,
                      std::ostream& out);
bool WriteChromeTraceFile(const TraceRecorder& recorder,
                          const std::string& path);

/// Parses a trace produced by WriteChromeTrace back into events (track
/// names are restored from the thread_name metadata). Returns false on
/// malformed input. Only the subset of the trace_event format this
/// module emits is understood.
bool LoadChromeTrace(std::istream& in, std::vector<TraceEvent>* events,
                     std::string* error = nullptr);
bool LoadChromeTraceFile(const std::string& path,
                         std::vector<TraceEvent>* events,
                         std::string* error = nullptr);

/// Per-job time-in-state totals reconstructed from job/publish spans.
struct JobPhaseBreakdown {
  std::string tenant;
  double queued_seconds = 0.0;
  double budget_wait_seconds = 0.0;
  double executing_seconds = 0.0;
  double publishing_seconds = 0.0;
};

struct NodeSpanInfo {
  std::string name;
  std::string track;
  double start_seconds = 0.0;
  double dur_seconds = 0.0;
};

/// Aggregate view of one trace: wall span, per-track busy time (lane
/// utilization = busy / wall on lane-* tracks), span counts per
/// category, per-job queued / waiting-budget / executing / publishing
/// breakdown, and the longest node executions (the critical-path
/// suspects on a saturated run).
struct TraceAnalysis {
  double wall_seconds = 0.0;
  std::map<std::string, double> track_busy_seconds;
  std::map<std::string, std::int64_t> category_counts;
  std::map<std::uint64_t, JobPhaseBreakdown> jobs;
  std::vector<NodeSpanInfo> longest_nodes;  // descending, capped at 10

  double TrackUtilization(const std::string& track) const;
};

TraceAnalysis AnalyzeTrace(const std::vector<TraceEvent>& events);

/// Human-readable analysis report (examples/trace_inspect.cpp).
std::string FormatTraceAnalysis(const TraceAnalysis& analysis);

}  // namespace sc::obs

#endif  // SC_OBS_TRACE_H_
