#include "obs/trace.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <utility>

#include "common/clock.h"
#include "common/str_util.h"

namespace sc::obs {

// ---------------------------------------------------------------------------
// Thread tracks
// ---------------------------------------------------------------------------

namespace {

std::atomic<std::uint64_t> next_recorder_id{1};
std::atomic<std::uint64_t> next_anonymous_track{0};

std::string& ThreadTrackStorage() {
  thread_local std::string track;
  return track;
}

}  // namespace

void SetThreadTrack(std::string name) {
  ThreadTrackStorage() = std::move(name);
}

const std::string& ThreadTrack() {
  std::string& track = ThreadTrackStorage();
  if (track.empty()) {
    track = "thread-" + std::to_string(next_anonymous_track.fetch_add(
                            1, std::memory_order_relaxed));
  }
  return track;
}

// ---------------------------------------------------------------------------
// TraceRecorder
// ---------------------------------------------------------------------------

TraceRecorder::TraceRecorder(TraceRecorderOptions options)
    : options_([&] {
        TraceRecorderOptions o = options;
        o.per_thread_capacity = std::max<std::size_t>(16,
                                                      o.per_thread_capacity);
        return o;
      }()),
      enabled_(options.enabled),
      id_(next_recorder_id.fetch_add(1, std::memory_order_relaxed)) {}

TraceRecorder::~TraceRecorder() = default;

TraceRecorder::ThreadBuffer* TraceRecorder::BufferForThisThread() {
  // Per-thread cache keyed by process-unique recorder id: a destroyed
  // recorder's id never recurs, so a stale cached pointer can never be
  // matched (and is never dereferenced).
  thread_local std::vector<std::pair<std::uint64_t, ThreadBuffer*>> cache;
  for (const auto& [id, buffer] : cache) {
    if (id == id_) return buffer;
  }
  auto owned = std::make_unique<ThreadBuffer>();
  owned->ring.reserve(std::min<std::size_t>(options_.per_thread_capacity,
                                            1024));
  ThreadBuffer* buffer = owned.get();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    buffers_.push_back(std::move(owned));
  }
  cache.emplace_back(id_, buffer);
  return buffer;
}

void TraceRecorder::Append(TraceEvent event) {
  ThreadBuffer* buffer = BufferForThisThread();
  std::lock_guard<std::mutex> lock(buffer->mutex);
  if (buffer->ring.size() < options_.per_thread_capacity) {
    buffer->ring.push_back(std::move(event));
    return;
  }
  // Ring wrap: overwrite the oldest slot.
  buffer->ring[buffer->next] = std::move(event);
  buffer->next = (buffer->next + 1) % options_.per_thread_capacity;
  buffer->wrapped = true;
  dropped_.fetch_add(1, std::memory_order_relaxed);
}

void TraceRecorder::Complete(const char* category, std::string name,
                             double start_seconds, double dur_seconds,
                             std::string args_json) {
  if (!enabled()) return;
  TraceEvent event;
  event.category = category;
  event.name = std::move(name);
  event.track = ThreadTrack();
  event.start_seconds = start_seconds;
  event.dur_seconds = std::max(0.0, dur_seconds);
  event.args_json = std::move(args_json);
  Append(std::move(event));
}

void TraceRecorder::CompleteOnTrack(std::string track,
                                    const char* category,
                                    std::string name,
                                    double start_seconds,
                                    double dur_seconds,
                                    std::string args_json) {
  if (!enabled()) return;
  TraceEvent event;
  event.category = category;
  event.name = std::move(name);
  event.track = std::move(track);
  event.start_seconds = start_seconds;
  event.dur_seconds = std::max(0.0, dur_seconds);
  event.args_json = std::move(args_json);
  Append(std::move(event));
}

void TraceRecorder::Instant(const char* category, std::string name,
                            std::string args_json, double at_seconds) {
  if (!enabled()) return;
  TraceEvent event;
  event.category = category;
  event.name = std::move(name);
  event.track = ThreadTrack();
  event.start_seconds = at_seconds >= 0.0 ? at_seconds : MonotonicSeconds();
  event.instant = true;
  event.args_json = std::move(args_json);
  Append(std::move(event));
}

std::vector<TraceEvent> TraceRecorder::Events() const {
  std::vector<TraceEvent> events;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> inner(buffer->mutex);
    // In wrap order: oldest surviving event first.
    if (buffer->wrapped) {
      for (std::size_t i = 0; i < buffer->ring.size(); ++i) {
        events.push_back(
            buffer->ring[(buffer->next + i) % buffer->ring.size()]);
      }
    } else {
      events.insert(events.end(), buffer->ring.begin(),
                    buffer->ring.end());
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.start_seconds < b.start_seconds;
                   });
  return events;
}

std::size_t TraceRecorder::event_count() const {
  std::size_t count = 0;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> inner(buffer->mutex);
    count += buffer->ring.size();
  }
  return count;
}

// ---------------------------------------------------------------------------
// Chrome trace export
// ---------------------------------------------------------------------------

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonUnescape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\' || i + 1 >= s.size()) {
      out += s[i];
      continue;
    }
    const char next = s[++i];
    switch (next) {
      case 'n': out += '\n'; break;
      case 't': out += '\t'; break;
      case 'r': out += '\r'; break;
      case 'u':
        if (i + 4 < s.size()) {
          out += static_cast<char>(
              std::strtol(s.substr(i + 1, 4).c_str(), nullptr, 16));
          i += 4;
        }
        break;
      default: out += next;
    }
  }
  return out;
}

}  // namespace

void WriteChromeTrace(const std::vector<TraceEvent>& events,
                      std::ostream& out) {
  // Stable tid assignment per track name, ordered lanes → workers →
  // everything else so the viewer lists the occupancy rows first.
  std::vector<std::string> tracks;
  for (const TraceEvent& event : events) {
    if (std::find(tracks.begin(), tracks.end(), event.track) ==
        tracks.end()) {
      tracks.push_back(event.track);
    }
  }
  const auto rank = [](const std::string& track) {
    if (StartsWith(track, "lane-")) return 0;
    if (StartsWith(track, "worker-")) return 1;
    if (StartsWith(track, "materializer")) return 2;
    return 3;
  };
  std::stable_sort(tracks.begin(), tracks.end(),
                   [&](const std::string& a, const std::string& b) {
                     return rank(a) < rank(b);
                   });
  std::map<std::string, int> tids;
  for (std::size_t i = 0; i < tracks.size(); ++i) {
    tids[tracks[i]] = static_cast<int>(i + 1);
  }

  double base = 0.0;
  for (const TraceEvent& event : events) {
    if (base == 0.0 || event.start_seconds < base) {
      base = event.start_seconds;
    }
  }

  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  for (const auto& [track, tid] : tids) {
    if (!first) out << ",\n";
    first = false;
    out << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
        << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
        << JsonEscape(track) << "\"}}";
    // Sort index pins the lane/worker ordering in the viewer.
    out << ",\n{\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
        << ",\"name\":\"thread_sort_index\",\"args\":{\"sort_index\":"
        << tid << "}}";
  }
  for (const TraceEvent& event : events) {
    if (!first) out << ",\n";
    first = false;
    const double ts = (event.start_seconds - base) * 1e6;  // microseconds
    out << "{\"ph\":\"" << (event.instant ? 'i' : 'X')
        << "\",\"pid\":1,\"tid\":" << tids[event.track] << ",\"cat\":\""
        << JsonEscape(event.category) << "\",\"name\":\""
        << JsonEscape(event.name) << "\",\"ts\":" << StrFormat("%.3f", ts);
    if (!event.instant) {
      out << ",\"dur\":" << StrFormat("%.3f", event.dur_seconds * 1e6);
    } else {
      out << ",\"s\":\"t\"";
    }
    out << ",\"args\":{" << event.args_json << "}}";
  }
  out << "\n]}\n";
}

void WriteChromeTrace(const TraceRecorder& recorder, std::ostream& out) {
  WriteChromeTrace(recorder.Events(), out);
}

bool WriteChromeTraceFile(const TraceRecorder& recorder,
                          const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  WriteChromeTrace(recorder, out);
  return static_cast<bool>(out);
}

// ---------------------------------------------------------------------------
// Chrome trace import (the subset WriteChromeTrace emits)
// ---------------------------------------------------------------------------

namespace {

/// Extracts the string value of `"key":"..."` handling the escapes
/// JsonEscape produces. Returns false if the key is absent.
bool ExtractString(const std::string& line, const std::string& key,
                   std::string* value) {
  const std::string needle = "\"" + key + "\":\"";
  const std::size_t start = line.find(needle);
  if (start == std::string::npos) return false;
  std::size_t pos = start + needle.size();
  std::string raw;
  while (pos < line.size()) {
    const char c = line[pos];
    if (c == '\\' && pos + 1 < line.size()) {
      raw += c;
      raw += line[pos + 1];
      pos += 2;
      continue;
    }
    if (c == '"') break;
    raw += c;
    ++pos;
  }
  *value = JsonUnescape(raw);
  return true;
}

bool ExtractNumber(const std::string& line, const std::string& key,
                   double* value) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t start = line.find(needle);
  if (start == std::string::npos) return false;
  *value = std::strtod(line.c_str() + start + needle.size(), nullptr);
  return true;
}

/// The args object body: everything between `"args":{` and the matching
/// brace (args is the last field on each emitted line, with no nested
/// objects inside).
std::string ExtractArgs(const std::string& line) {
  const std::string needle = "\"args\":{";
  const std::size_t start = line.find(needle);
  if (start == std::string::npos) return "";
  const std::size_t body = start + needle.size();
  const std::size_t end = line.rfind('}');
  if (end == std::string::npos || end <= body) return "";
  // line ends with ...}} or ...}}, — strip the event's own closing brace.
  const std::size_t close = line.rfind('}', end - 1);
  if (close == std::string::npos || close < body) return "";
  return line.substr(body, close - body);
}

}  // namespace

bool LoadChromeTrace(std::istream& in, std::vector<TraceEvent>* events,
                     std::string* error) {
  events->clear();
  std::map<int, std::string> track_names;
  std::string line;
  bool saw_header = false;
  while (std::getline(in, line)) {
    if (!saw_header) {
      if (line.find("\"traceEvents\"") == std::string::npos) {
        if (error != nullptr) *error = "missing traceEvents header";
        return false;
      }
      saw_header = true;
      continue;
    }
    std::string ph;
    if (!ExtractString(line, "ph", &ph)) continue;  // closing bracket
    double tid = 0.0;
    ExtractNumber(line, "tid", &tid);
    if (ph == "M") {
      std::string name;
      if (ExtractString(line, "name", &name) && name == "thread_name") {
        // The args object holds the track: "args":{"name":"lane-0"}.
        const std::string args = ExtractArgs(line);
        std::string track;
        if (ExtractString(args, "name", &track)) {
          track_names[static_cast<int>(tid)] = track;
        }
      }
      continue;
    }
    if (ph != "X" && ph != "i") continue;
    TraceEvent event;
    event.instant = ph == "i";
    std::string cat;
    ExtractString(line, "cat", &cat);
    event.category = cat;
    ExtractString(line, "name", &event.name);
    double ts = 0.0;
    ExtractNumber(line, "ts", &ts);
    event.start_seconds = ts / 1e6;
    double dur = 0.0;
    if (!event.instant && ExtractNumber(line, "dur", &dur)) {
      event.dur_seconds = dur / 1e6;
    }
    event.args_json = ExtractArgs(line);
    event.track = track_names.count(static_cast<int>(tid))
                      ? track_names[static_cast<int>(tid)]
                      : "tid-" + std::to_string(static_cast<int>(tid));
    events->push_back(std::move(event));
  }
  if (!saw_header) {
    if (error != nullptr) *error = "empty input";
    return false;
  }
  return true;
}

bool LoadChromeTraceFile(const std::string& path,
                         std::vector<TraceEvent>* events,
                         std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  return LoadChromeTrace(in, events, error);
}

// ---------------------------------------------------------------------------
// Analysis
// ---------------------------------------------------------------------------

namespace {

bool ExtractArgNumber(const std::string& args, const std::string& key,
                      double* value) {
  return ExtractNumber(args, key, value);
}

}  // namespace

double TraceAnalysis::TrackUtilization(const std::string& track) const {
  const auto it = track_busy_seconds.find(track);
  if (it == track_busy_seconds.end() || wall_seconds <= 0.0) return 0.0;
  return it->second / wall_seconds;
}

TraceAnalysis AnalyzeTrace(const std::vector<TraceEvent>& events) {
  TraceAnalysis analysis;
  if (events.empty()) return analysis;
  double min_start = events.front().start_seconds;
  double max_end = min_start;
  for (const TraceEvent& event : events) {
    min_start = std::min(min_start, event.start_seconds);
    max_end = std::max(max_end, event.start_seconds + event.dur_seconds);
    ++analysis.category_counts[event.category];
    if (!event.instant) {
      analysis.track_busy_seconds[event.track] += event.dur_seconds;
    }
    double job = 0.0;
    const bool has_job =
        ExtractArgNumber(event.args_json, "job", &job);
    if (has_job) {
      JobPhaseBreakdown& breakdown =
          analysis.jobs[static_cast<std::uint64_t>(job)];
      if (event.category == "job") {
        std::string tenant;
        if (ExtractString(event.args_json, "tenant", &tenant)) {
          breakdown.tenant = tenant;
        }
        if (event.name == "queued") {
          breakdown.queued_seconds += event.dur_seconds;
        } else if (event.name == "wait-budget") {
          breakdown.budget_wait_seconds += event.dur_seconds;
        } else if (event.name == "execute") {
          breakdown.executing_seconds += event.dur_seconds;
        }
      } else if (event.category == "publish") {
        breakdown.publishing_seconds += event.dur_seconds;
      }
    }
    if (event.category == "node" && !event.instant) {
      NodeSpanInfo info;
      info.name = event.name;
      info.track = event.track;
      info.start_seconds = event.start_seconds;
      info.dur_seconds = event.dur_seconds;
      analysis.longest_nodes.push_back(std::move(info));
    }
  }
  analysis.wall_seconds = max_end - min_start;
  std::stable_sort(analysis.longest_nodes.begin(),
                   analysis.longest_nodes.end(),
                   [](const NodeSpanInfo& a, const NodeSpanInfo& b) {
                     return a.dur_seconds > b.dur_seconds;
                   });
  if (analysis.longest_nodes.size() > 10) {
    analysis.longest_nodes.resize(10);
  }
  return analysis;
}

std::string FormatTraceAnalysis(const TraceAnalysis& analysis) {
  std::ostringstream out;
  out << StrFormat("trace wall span: %.3fs\n", analysis.wall_seconds);
  out << "\nspans per category:\n";
  for (const auto& [category, count] : analysis.category_counts) {
    out << StrFormat("  %-12s %lld\n", category.c_str(),
                     static_cast<long long>(count));
  }
  out << "\nper-track busy time (lane occupancy):\n";
  for (const auto& [track, busy] : analysis.track_busy_seconds) {
    out << StrFormat("  %-16s %.3fs  (%.1f%% of wall)\n", track.c_str(),
                     busy, 100.0 * analysis.TrackUtilization(track));
  }
  if (!analysis.jobs.empty()) {
    out << "\nper-job time in state (s):\n";
    out << StrFormat("  %-6s %-10s %8s %12s %9s %10s\n", "job", "tenant",
                     "queued", "wait-budget", "execute", "publish");
    for (const auto& [job, b] : analysis.jobs) {
      out << StrFormat("  %-6llu %-10s %8.4f %12.4f %9.4f %10.4f\n",
                       static_cast<unsigned long long>(job),
                       b.tenant.c_str(), b.queued_seconds,
                       b.budget_wait_seconds, b.executing_seconds,
                       b.publishing_seconds);
    }
  }
  if (!analysis.longest_nodes.empty()) {
    out << "\nlongest node executions (critical-path suspects):\n";
    for (const NodeSpanInfo& node : analysis.longest_nodes) {
      out << StrFormat("  %-24s %.4fs  on %s\n", node.name.c_str(),
                       node.dur_seconds, node.track.c_str());
    }
  }
  return out.str();
}

}  // namespace sc::obs
