#include "obs/registry.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/str_util.h"

namespace sc::obs {

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

Histogram::Histogram(std::vector<double> bounds)
    : bounds_([&] {
        std::sort(bounds.begin(), bounds.end());
        bounds.erase(std::unique(bounds.begin(), bounds.end()),
                     bounds.end());
        return bounds;
      }()),
      buckets_(bounds_.size()) {}

void Histogram::Observe(double v) {
  // First bucket whose upper bound admits v; past-the-end = +Inf bucket,
  // which is implicit (count_).
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  if (it != bounds_.end()) {
    buckets_[static_cast<std::size_t>(it - bounds_.begin())].fetch_add(
        1, std::memory_order_relaxed);
  }
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_micros_.fetch_add(static_cast<std::int64_t>(v * 1e6),
                        std::memory_order_relaxed);
}

std::int64_t Histogram::cumulative(std::size_t i) const {
  if (i >= bounds_.size()) return count();
  std::int64_t total = 0;
  for (std::size_t b = 0; b <= i; ++b) {
    total += buckets_[b].load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::sum() const {
  return static_cast<double>(sum_micros_.load(std::memory_order_relaxed)) /
         1e6;
}

std::vector<double> Histogram::LatencyBounds() {
  return {0.001, 0.004, 0.016, 0.064, 0.25, 1.0, 4.0, 16.0, 64.0};
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

std::string Registry::RenderLabels(const Labels& labels) {
  if (labels.empty()) return "";
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::string out = "{";
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (i > 0) out += ",";
    out += sorted[i].first + "=\"" + sorted[i].second + "\"";
  }
  out += "}";
  return out;
}

Registry::Series* Registry::GetSeriesLocked(const std::string& name,
                                            const std::string& help,
                                            Kind kind, Labels labels) {
  Family& family = families_[name];
  if (family.series.empty()) {
    family.help = help;
    family.kind = kind;
  }
  Series& series = family.series[RenderLabels(labels)];
  if (series.labels.empty() && !labels.empty()) {
    series.labels = std::move(labels);
  }
  return &series;
}

Counter* Registry::GetCounter(const std::string& name,
                              const std::string& help, Labels labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  Series* series =
      GetSeriesLocked(name, help, Kind::kCounter, std::move(labels));
  if (series->counter == nullptr) {
    series->counter = std::make_unique<Counter>();
  }
  return series->counter.get();
}

Gauge* Registry::GetGauge(const std::string& name, const std::string& help,
                          Labels labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  Series* series =
      GetSeriesLocked(name, help, Kind::kGauge, std::move(labels));
  if (series->gauge == nullptr) series->gauge = std::make_unique<Gauge>();
  return series->gauge.get();
}

Histogram* Registry::GetHistogram(const std::string& name,
                                  const std::string& help, Labels labels,
                                  std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  Series* series =
      GetSeriesLocked(name, help, Kind::kHistogram, std::move(labels));
  if (series->histogram == nullptr) {
    if (bounds.empty()) bounds = Histogram::LatencyBounds();
    series->histogram = std::make_unique<Histogram>(std::move(bounds));
  }
  return series->histogram.get();
}

void Registry::RegisterCallbackGauge(const std::string& name,
                                     const std::string& help,
                                     Labels labels,
                                     std::function<double()> fn) {
  std::lock_guard<std::mutex> lock(mutex_);
  Series* series =
      GetSeriesLocked(name, help, Kind::kCallback, std::move(labels));
  series->callback = std::move(fn);
}

namespace {

/// %g-style but locale-independent and integer-friendly: counters print
/// without a fractional tail so golden texts stay stable.
std::string FormatValue(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 1e15) {
    return std::to_string(static_cast<long long>(v));
  }
  return StrFormat("%g", v);
}

}  // namespace

std::string Registry::ToPrometheusText() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  for (const auto& [name, family] : families_) {
    const char* type = family.kind == Kind::kCounter     ? "counter"
                       : family.kind == Kind::kHistogram ? "histogram"
                                                         : "gauge";
    if (!family.help.empty()) {
      out << "# HELP " << name << " " << family.help << "\n";
    }
    out << "# TYPE " << name << " " << type << "\n";
    for (const auto& [rendered, series] : family.series) {
      if (series.histogram != nullptr) {
        const Histogram& h = *series.histogram;
        // Re-render bucket labels with `le` appended to the series
        // labels (inside one brace set).
        std::string prefix = rendered.empty()
                                 ? "{"
                                 : rendered.substr(0, rendered.size() - 1) +
                                       ",";
        for (std::size_t b = 0; b < h.bounds().size(); ++b) {
          out << name << "_bucket" << prefix << "le=\""
              << FormatValue(h.bounds()[b]) << "\"} " << h.cumulative(b)
              << "\n";
        }
        out << name << "_bucket" << prefix << "le=\"+Inf\"} " << h.count()
            << "\n";
        out << name << "_sum" << rendered << " " << FormatValue(h.sum())
            << "\n";
        out << name << "_count" << rendered << " " << h.count() << "\n";
        continue;
      }
      double value = 0.0;
      if (series.counter != nullptr) {
        value = static_cast<double>(series.counter->value());
      } else if (series.gauge != nullptr) {
        value = series.gauge->value();
      } else if (series.callback) {
        value = series.callback();
      }
      out << name << rendered << " " << FormatValue(value) << "\n";
    }
  }
  return out.str();
}

std::map<std::string, double> Registry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::map<std::string, double> snapshot;
  for (const auto& [name, family] : families_) {
    for (const auto& [rendered, series] : family.series) {
      if (series.histogram != nullptr) {
        snapshot[name + "_count" + rendered] =
            static_cast<double>(series.histogram->count());
        snapshot[name + "_sum" + rendered] = series.histogram->sum();
      } else if (series.counter != nullptr) {
        snapshot[name + rendered] =
            static_cast<double>(series.counter->value());
      } else if (series.gauge != nullptr) {
        snapshot[name + rendered] = series.gauge->value();
      } else if (series.callback) {
        snapshot[name + rendered] = series.callback();
      }
    }
  }
  return snapshot;
}

std::string ToPrometheusText(const Registry& registry) {
  return registry.ToPrometheusText();
}

std::map<std::string, double> SnapshotDelta(
    const std::map<std::string, double>& before,
    const std::map<std::string, double>& after) {
  std::map<std::string, double> delta;
  for (const auto& [key, value] : after) {
    const auto it = before.find(key);
    delta[key] = it == before.end() ? value : value - it->second;
  }
  return delta;
}

}  // namespace sc::obs
