#ifndef SC_OBS_REGISTRY_H_
#define SC_OBS_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace sc::obs {

/// Monotonically increasing count (events, bytes, completed jobs).
/// Lock-free; safe to bump from any thread.
class Counter {
 public:
  void Increment(std::int64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Point-in-time value (queue depth, resident bytes). Lock-free.
class Gauge {
 public:
  void Set(double v) { bits_.store(Encode(v), std::memory_order_relaxed); }
  void Add(double v) {
    // Monitoring-grade CAS loop: contention on a gauge is rare.
    std::uint64_t expected = bits_.load(std::memory_order_relaxed);
    while (!bits_.compare_exchange_weak(
        expected, Encode(Decode(expected) + v), std::memory_order_relaxed,
        std::memory_order_relaxed)) {
    }
  }
  double value() const {
    return Decode(bits_.load(std::memory_order_relaxed));
  }

 private:
  static std::uint64_t Encode(double v) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    __builtin_memcpy(&bits, &v, sizeof(bits));
    return bits;
  }
  static double Decode(std::uint64_t bits) {
    double v;
    __builtin_memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::atomic<std::uint64_t> bits_{0};
};

/// Cumulative histogram with fixed upper bounds (Prometheus `le`
/// semantics: bucket i counts observations <= bounds[i], plus an
/// implicit +Inf bucket). Observation is one relaxed fetch_add per
/// bucket walk — cheap enough for per-job latency recording.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double v);

  const std::vector<double>& bounds() const { return bounds_; }
  /// Cumulative count of observations <= bounds()[i]; index bounds().
  /// size() is the +Inf bucket (== count()).
  std::int64_t cumulative(std::size_t i) const;
  std::int64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const;

  /// Default latency bounds: 1ms .. ~100s, roughly 4x apart.
  static std::vector<double> LatencyBounds();

 private:
  const std::vector<double> bounds_;
  // Non-cumulative per-bucket counts; cumulated at read time.
  std::vector<std::atomic<std::int64_t>> buckets_;
  std::atomic<std::int64_t> count_{0};
  std::atomic<std::int64_t> sum_micros_{0};  // sum in 1e-6 units
};

/// Prometheus-style label set, rendered as {k="v",...} sorted by key.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Unified metrics registry (ROADMAP observability layer): one namespace
/// of counters / gauges / histograms across service, runtime, and
/// storage, with Prometheus text exposition and point-in-time snapshots
/// for bench deltas.
///
/// Get* returns a stable pointer owned by the registry — call once at
/// wiring time, then bump the primitive lock-free from any thread.
/// Repeated Get* with the same (name, labels) returns the same object.
/// Callback gauges mirror values that already live elsewhere (LanePool
/// counters, SharedCatalog bytes): the callback runs at exposition /
/// snapshot time only, so mirroring costs nothing on the hot path.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter* GetCounter(const std::string& name, const std::string& help,
                      Labels labels = {});
  Gauge* GetGauge(const std::string& name, const std::string& help,
                  Labels labels = {});
  Histogram* GetHistogram(const std::string& name, const std::string& help,
                          Labels labels = {},
                          std::vector<double> bounds = {});
  /// Registers (or replaces) a gauge whose value is read through `fn` at
  /// exposition time.
  void RegisterCallbackGauge(const std::string& name,
                             const std::string& help, Labels labels,
                             std::function<double()> fn);

  /// Prometheus text exposition format: families sorted by name, one
  /// # HELP / # TYPE header per family, histogram buckets with `le`
  /// labels plus _sum and _count series.
  std::string ToPrometheusText() const;

  /// Flat point-in-time view (histograms contribute _count and _sum):
  /// series name with rendered labels -> value. Benches diff two
  /// snapshots to report per-segment deltas.
  std::map<std::string, double> Snapshot() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram, kCallback };
  struct Series {
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    std::function<double()> callback;
  };
  struct Family {
    std::string help;
    Kind kind = Kind::kCounter;
    // Keyed by rendered label string for stable exposition order.
    std::map<std::string, Series> series;
  };

  static std::string RenderLabels(const Labels& labels);
  Series* GetSeriesLocked(const std::string& name,
                          const std::string& help, Kind kind,
                          Labels labels);

  mutable std::mutex mutex_;
  std::map<std::string, Family> families_;
};

/// Convenience: `registry.ToPrometheusText()` as a free function (the
/// exposition entry point named by the ROADMAP).
std::string ToPrometheusText(const Registry& registry);

/// Per-key difference `after - before` of two Registry snapshots; keys
/// present only in `after` are reported at their full value.
std::map<std::string, double> SnapshotDelta(
    const std::map<std::string, double>& before,
    const std::map<std::string, double>& after);

}  // namespace sc::obs

#endif  // SC_OBS_REGISTRY_H_
